"""Adversarial scenario search: evolve worst-case fault timelines (red team).

The built-in :data:`~repro.scenarios.SCENARIOS` régimes are hand-written,
but the paper's §V self-healing story is only as credible as the worst
timeline the healer survives — and the interesting worst cases are not
the ones anyone writes by hand.  This module points the repository's own
evolutionary machinery at the *scenario space*:

* a :class:`FaultScenario` becomes the genotype — SEU/LPD arrival rates,
  burst timing and magnitude, permanent-onset placement and scrub cadence
  — constrained by a :class:`ScenarioBounds` envelope (including an
  expected-event budget, so the search cannot "win" by simply requesting
  more faults than the hand-written régimes);
* :func:`mutate_scenario` / :func:`crossover_scenarios` are
  validity-preserving variation operators (every child is clamped back
  into the bounds, so every candidate is a valid, JSON-round-tripping
  scenario);
* the outer loop is the existing
  :class:`~repro.ea.strategy.OnePlusLambdaES` with a custom
  ``mutation_operator``, and its fitness is the mission degradation (or
  time-to-repair) of a *fixed* §V.A healing policy run through the
  ``scenario-lifecycle`` campaign runner — one
  :class:`~repro.runtime.campaign.CampaignSpec` per search generation, so
  the serial/thread/process/distributed executors, the
  content-addressed dedupe cache and the resumable
  :class:`~repro.runtime.store.CampaignStore` all work for free;
* discovered dominated-by-none timelines accumulate in a
  :class:`ScenarioArchive` (Pareto over degradation and time-to-repair)
  whose JSON form is canonical — same search seed, byte-identical
  archive, regardless of executor or backend.

``tools/freeze_scenario.py`` promotes archive entries into
:mod:`repro.scenarios.frozen` (permanent regression workloads), and the
``red-team`` experiment / ``repro-ehw red-team`` subcommand exposes the
search on the CLI.

Everything here is deterministic: the search RNG is the tagged stream
``SeedSequence([_REDTEAM_STREAM_TAG, seed])``, candidate scenarios carry
no wall-clock state, and the archive writer sorts entries and keys
canonically (and skips empty-event generations rather than emitting
spurious entries).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import (
    EvolutionConfig,
    PlatformConfig,
    SelfHealingConfig,
    TaskSpec,
    _ConfigBase,
)
from repro.api.signature import content_signature
from repro.ea.strategy import OnePlusLambdaES
from repro.runtime.campaign import CampaignSpec
from repro.runtime.engine import run_campaign
from repro.runtime.store import CampaignStore, DedupeCache
from repro.scenarios.schedule import EventSchedule, compile_schedule
from repro.scenarios.spec import FaultScenario

__all__ = [
    "ScenarioBounds",
    "RedTeamConfig",
    "ScenarioMutation",
    "ScenarioGenotypeOperator",
    "ArchiveEntry",
    "ScenarioArchive",
    "RedTeamResult",
    "OBJECTIVES",
    "PARETO_OBJECTIVES",
    "expected_fault_events",
    "scenario_within_bounds",
    "clamp_scenario",
    "mutate_scenario",
    "crossover_scenarios",
    "initial_scenario",
    "mission_metrics",
    "schedule_event_summary",
    "build_mission_campaign",
    "evaluate_mission",
    "red_team_search",
]

#: Stream tag of the red-team search RNG (mutation/crossover draws).
#: Mixed with the search seed via ``SeedSequence`` so the search can
#: never alias the scenario-schedule or fabric streams derived from the
#: same base seed (the PR 4 tagged-stream contract).
_REDTEAM_STREAM_TAG = 0xAD5E4C8

#: Fitness objectives the outer ES can minimise (it minimises the
#: *negated* metric, so the search maximises harm).
OBJECTIVES: Mapping[str, str] = {
    "degradation": "degradation",
    "time-to-repair": "steps_degraded",
}

#: The archive's Pareto axes, both maximised: mission degradation (how
#: much worse the worst array ends vs its calibration baseline) and
#: time-to-repair (mission steps spent with a detected fault).
PARETO_OBJECTIVES: Tuple[str, ...] = ("degradation", "steps_degraded")


# --------------------------------------------------------------------------- #
# The genotype envelope
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioBounds(_ConfigBase):
    """The valid scenario-genotype envelope the search explores.

    Parameters
    ----------
    horizon:
        Mission length in monitoring cycles; every candidate timeline is
        judged over exactly this many steps, and events scheduled at or
        beyond it are dropped by :func:`clamp_scenario`.
    max_seu_rate, max_lpd_rate:
        Per-generation Poisson arrival-rate ceilings.
    max_bursts, max_onsets:
        Maximum number of ``seu_bursts`` / ``lpd_onsets`` entries.
    max_burst_count, max_onset_count:
        Maximum count of a single burst/onset entry.
    max_scrub_period:
        Scrub-cadence ceiling (``0`` — no background scrub — is always
        allowed).
    event_budget:
        Ceiling on the *expected* number of fault events over the
        horizon (``(seu_rate + lpd_rate) * horizon`` plus all in-horizon
        burst/onset counts).  This is the matched-budget rule: a
        discovered worst case must do its damage with no more expected
        events than the hand-written régimes it is compared against.
    """

    horizon: int = 10
    max_seu_rate: float = 1.5
    max_lpd_rate: float = 0.3
    max_bursts: int = 3
    max_onsets: int = 2
    max_burst_count: int = 6
    max_onset_count: int = 2
    max_scrub_period: int = 8
    event_budget: float = 12.0

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.max_seu_rate < 0 or self.max_lpd_rate < 0:
            raise ValueError("rate ceilings must be non-negative")
        if self.max_bursts < 0 or self.max_onsets < 0:
            raise ValueError("event-list ceilings must be non-negative")
        if self.max_burst_count < 1 or self.max_onset_count < 1:
            raise ValueError("per-event count ceilings must be >= 1")
        if self.max_scrub_period < 0:
            raise ValueError("max_scrub_period must be >= 0")
        if self.event_budget <= 0:
            raise ValueError(f"event_budget must be > 0, got {self.event_budget}")


def expected_fault_events(scenario: FaultScenario, horizon: int) -> float:
    """Expected fault events (SEU + LPD, not scrubs) over ``horizon`` steps."""
    total = (scenario.seu_rate + scenario.lpd_rate) * horizon
    total += sum(count for generation, count in scenario.seu_bursts if generation < horizon)
    total += sum(count for generation, count in scenario.lpd_onsets if generation < horizon)
    return float(total)


def scenario_within_bounds(
    scenario: FaultScenario, bounds: ScenarioBounds, tol: float = 1e-9
) -> bool:
    """Whether ``scenario`` lies inside the search envelope."""
    if not 0 <= scenario.seu_rate <= bounds.max_seu_rate + tol:
        return False
    if not 0 <= scenario.lpd_rate <= bounds.max_lpd_rate + tol:
        return False
    if not 0 <= scenario.scrub_period <= bounds.max_scrub_period:
        return False
    if len(scenario.seu_bursts) > bounds.max_bursts:
        return False
    if len(scenario.lpd_onsets) > bounds.max_onsets:
        return False
    for generation, count in scenario.seu_bursts:
        if generation >= bounds.horizon or not 1 <= count <= bounds.max_burst_count:
            return False
    for generation, count in scenario.lpd_onsets:
        if generation >= bounds.horizon or not 1 <= count <= bounds.max_onset_count:
            return False
    return expected_fault_events(scenario, bounds.horizon) <= bounds.event_budget + tol


def _clamp_events(
    events: Sequence[Tuple[int, int]], bounds: ScenarioBounds, max_entries: int,
    max_count: int,
) -> List[Tuple[int, int]]:
    kept = sorted(
        (int(generation), int(min(max(count, 1), max_count)))
        for generation, count in events
        if 0 <= generation < bounds.horizon
    )
    # Collapse duplicate generations (two bursts at one generation are one
    # bigger burst) so crossover merges stay canonical.
    merged: Dict[int, int] = {}
    for generation, count in kept:
        merged[generation] = min(merged.get(generation, 0) + count, max_count)
    return sorted(merged.items())[:max_entries]


def clamp_scenario(scenario: FaultScenario, bounds: ScenarioBounds) -> FaultScenario:
    """Deterministically project ``scenario`` into the search envelope.

    Event lists are trimmed to the horizon and their ceilings, then the
    expected-event budget is enforced: discrete burst/onset counts are
    shrunk from the timeline's tail first, and the continuous rates are
    scaled into whatever budget remains.  Clamping an in-bounds scenario
    is the identity (up to rate rounding), so the operators can always
    clamp unconditionally.
    """
    bursts = _clamp_events(
        scenario.seu_bursts, bounds, bounds.max_bursts, bounds.max_burst_count
    )
    onsets = _clamp_events(
        scenario.lpd_onsets, bounds, bounds.max_onsets, bounds.max_onset_count
    )

    discrete = sum(count for _, count in bursts) + sum(count for _, count in onsets)
    while discrete > bounds.event_budget and (bursts or onsets):
        # Shrink from the tail: latest-scheduled events disappear first,
        # which keeps the timeline's opening (the part the healer has
        # already reacted to) stable under small budget changes.
        target = bursts if bursts and (not onsets or bursts[-1][0] >= onsets[-1][0]) \
            else onsets
        generation, count = target[-1]
        if count > 1:
            target[-1] = (generation, count - 1)
        else:
            target.pop()
        discrete -= 1

    seu_rate = float(min(max(scenario.seu_rate, 0.0), bounds.max_seu_rate))
    lpd_rate = float(min(max(scenario.lpd_rate, 0.0), bounds.max_lpd_rate))
    rate_budget = max(bounds.event_budget - discrete, 0.0)
    expected_rate_events = (seu_rate + lpd_rate) * bounds.horizon
    if expected_rate_events > rate_budget:
        scale = rate_budget / expected_rate_events
        seu_rate *= scale
        lpd_rate *= scale
    # Quantise to 1e-6.  ``round`` is idempotent (truncating via
    # ``int(x * 1e6)`` is not: float representation error can shave a
    # further step off an already-quantised rate on every clamp), but it
    # can round the total a hair over the remaining budget or a rate over
    # its ceiling — cap back and walk the total down a step if so.
    seu_rate = min(round(seu_rate, 6), bounds.max_seu_rate)
    lpd_rate = min(round(lpd_rate, 6), bounds.max_lpd_rate)
    while (seu_rate + lpd_rate) * bounds.horizon > rate_budget + 1e-9:
        if seu_rate >= lpd_rate and seu_rate > 0:
            seu_rate = max(round(seu_rate - 1e-6, 6), 0.0)
        elif lpd_rate > 0:
            lpd_rate = max(round(lpd_rate - 1e-6, 6), 0.0)
        else:  # pragma: no cover - both rates zero cannot exceed the budget
            break
    return scenario.replace(
        seu_rate=seu_rate,
        lpd_rate=lpd_rate,
        seu_bursts=tuple(bursts),
        lpd_onsets=tuple(onsets),
        scrub_period=int(min(max(scenario.scrub_period, 0), bounds.max_scrub_period)),
    )


def initial_scenario(bounds: ScenarioBounds, name: str = "redteam-candidate") -> FaultScenario:
    """A mild deterministic starting genotype inside ``bounds``."""
    burst_generation = min(1, bounds.horizon - 1)
    return clamp_scenario(
        FaultScenario(
            name=name,
            seu_rate=min(0.25, bounds.max_seu_rate),
            lpd_rate=min(0.02, bounds.max_lpd_rate),
            seu_bursts=((burst_generation, 1),) if bounds.max_bursts else (),
            scrub_period=min(4, bounds.max_scrub_period),
        ),
        bounds,
    )


# --------------------------------------------------------------------------- #
# Variation operators
# --------------------------------------------------------------------------- #
def _mutate_event_list(
    events: Tuple[Tuple[int, int], ...],
    bounds: ScenarioBounds,
    rng: np.random.Generator,
    max_entries: int,
    max_count: int,
    action: str,
) -> Tuple[Tuple[int, int], ...]:
    entries = list(events)
    if action == "add" or not entries:
        entry = (int(rng.integers(0, bounds.horizon)), int(rng.integers(1, max_count + 1)))
        if len(entries) < max_entries:
            entries.append(entry)
        elif entries:
            entries[int(rng.integers(0, len(entries)))] = entry
        return tuple(entries)
    index = int(rng.integers(0, len(entries)))
    if action == "remove":
        entries.pop(index)
    else:  # "move": reschedule and resize one entry
        entries[index] = (
            int(rng.integers(0, bounds.horizon)),
            int(rng.integers(1, max_count + 1)),
        )
    return tuple(entries)


def mutate_scenario(
    scenario: FaultScenario, bounds: ScenarioBounds, rng: np.random.Generator
) -> FaultScenario:
    """One validity-preserving mutation move, drawn from ``rng``.

    Exactly one aspect of the timeline changes per call — an arrival
    rate, the scrub cadence, or one burst/onset entry (added, removed,
    rescheduled or resized) — and the result is clamped back into
    ``bounds``, so the returned scenario is always valid.
    """
    move = int(rng.integers(0, 8))
    if move == 0:
        jitter = (rng.random() * 2 - 1) * 0.25 * max(bounds.max_seu_rate, 1e-6)
        scenario = scenario.replace(seu_rate=max(scenario.seu_rate + jitter, 0.0))
    elif move == 1:
        jitter = (rng.random() * 2 - 1) * 0.25 * max(bounds.max_lpd_rate, 1e-6)
        scenario = scenario.replace(lpd_rate=max(scenario.lpd_rate + jitter, 0.0))
    elif move == 2:
        scenario = scenario.replace(
            scrub_period=int(rng.integers(0, bounds.max_scrub_period + 1))
        )
    else:
        action = ("add", "move", "remove")[int(rng.integers(0, 3))]
        if move in (3, 4, 5):
            scenario = scenario.replace(seu_bursts=_mutate_event_list(
                scenario.seu_bursts, bounds, rng, bounds.max_bursts,
                bounds.max_burst_count, action,
            ))
        else:
            scenario = scenario.replace(lpd_onsets=_mutate_event_list(
                scenario.lpd_onsets, bounds, rng, bounds.max_onsets,
                bounds.max_onset_count, action,
            ))
    return clamp_scenario(scenario, bounds)


def _cross_events(
    first: Tuple[Tuple[int, int], ...],
    second: Tuple[Tuple[int, int], ...],
    rng: np.random.Generator,
) -> Tuple[Tuple[int, int], ...]:
    pool = sorted(set(first) | set(second))
    kept = [entry for entry in pool if rng.random() < 0.5]
    if pool and not kept:
        kept = [pool[int(rng.integers(0, len(pool)))]]
    return tuple(kept)


def crossover_scenarios(
    first: FaultScenario,
    second: FaultScenario,
    bounds: ScenarioBounds,
    rng: np.random.Generator,
) -> FaultScenario:
    """Uniform crossover of two timelines, clamped back into ``bounds``.

    Scalar fields come from either parent with equal probability; the
    burst/onset lists are merged and subsampled (never emptied when a
    parent had events).  The child keeps ``first``'s name and seed.
    """
    picks = rng.integers(0, 2, size=3)
    child = first.replace(
        seu_rate=(first if picks[0] else second).seu_rate,
        lpd_rate=(first if picks[1] else second).lpd_rate,
        scrub_period=(first if picks[2] else second).scrub_period,
        seu_bursts=_cross_events(first.seu_bursts, second.seu_bursts, rng),
        lpd_onsets=_cross_events(first.lpd_onsets, second.lpd_onsets, rng),
    )
    return clamp_scenario(child, bounds)


@dataclass(frozen=True)
class ScenarioMutation:
    """Adapter matching :class:`~repro.ea.mutation.MutationResult`'s shape.

    Scenario variation performs no partial reconfiguration, so the
    reconfiguration count the ES accumulates is always zero.
    """

    genotype: FaultScenario
    n_reconfigurations: int = 0


class ScenarioGenotypeOperator:
    """The ES ``mutation_operator`` over :class:`FaultScenario` genotypes.

    With probability ``crossover_rate`` (and a non-empty archive) the
    parent is first crossed with an archive member drawn from ``rng``,
    then ``mutation_rate`` mutation moves are applied — all draws come
    from the ES's own generator, so one search seed fixes the entire
    variation stream.
    """

    def __init__(
        self,
        bounds: ScenarioBounds,
        archive: Optional["ScenarioArchive"] = None,
        crossover_rate: float = 0.0,
    ) -> None:
        self.bounds = bounds
        self.archive = archive
        self.crossover_rate = float(crossover_rate)

    def __call__(
        self, parent: FaultScenario, mutation_rate: int, rng: np.random.Generator
    ) -> ScenarioMutation:
        scenario = parent
        if (
            self.crossover_rate > 0
            and self.archive is not None
            and self.archive.entries
            and rng.random() < self.crossover_rate
        ):
            mate = self.archive.entries[int(rng.integers(0, len(self.archive.entries)))]
            scenario = crossover_scenarios(scenario, mate.scenario, self.bounds, rng)
        for _ in range(int(mutation_rate)):
            scenario = mutate_scenario(scenario, self.bounds, rng)
        return ScenarioMutation(genotype=scenario)


# --------------------------------------------------------------------------- #
# The Pareto archive
# --------------------------------------------------------------------------- #
@dataclass
class ArchiveEntry:
    """One dominated-by-none discovered timeline with its provenance."""

    scenario: FaultScenario
    metrics: Dict[str, Any]
    scenario_signature: str
    schedule_signature: str
    run_signature: str
    generation: int
    scenario_events: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "metrics": dict(self.metrics),
            "scenario_signature": self.scenario_signature,
            "schedule_signature": self.schedule_signature,
            "run_signature": self.run_signature,
            "generation": self.generation,
            "scenario_events": {
                generation: dict(counts)
                for generation, counts in self.scenario_events.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchiveEntry":
        return cls(
            scenario=FaultScenario.from_dict(dict(data["scenario"])),
            metrics=dict(data["metrics"]),
            scenario_signature=data["scenario_signature"],
            schedule_signature=data["schedule_signature"],
            run_signature=data["run_signature"],
            generation=int(data["generation"]),
            scenario_events={
                generation: dict(counts)
                for generation, counts in data.get("scenario_events", {}).items()
            },
        )


class ScenarioArchive:
    """Archive of scenarios dominated by none (Pareto, both axes maximised)."""

    def __init__(self, objectives: Sequence[str] = PARETO_OBJECTIVES) -> None:
        self.objectives = tuple(objectives)
        self.entries: List[ArchiveEntry] = []

    @staticmethod
    def _key(metrics: Mapping[str, Any], objectives: Sequence[str]) -> Tuple[float, ...]:
        return tuple(float(metrics[name]) for name in objectives)

    def _dominates(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
        ka = self._key(a, self.objectives)
        kb = self._key(b, self.objectives)
        return all(x >= y for x, y in zip(ka, kb)) and any(x > y for x, y in zip(ka, kb))

    def offer(self, entry: ArchiveEntry) -> bool:
        """Add ``entry`` unless a kept entry dominates or exactly ties it.

        First discovery wins a tie: a candidate whose objective vector
        equals a kept entry's is rejected, so the archive holds *distinct*
        trade-off points rather than every metric-identical variant.
        Admitting an entry evicts everything it dominates.
        """
        if any(e.scenario_signature == entry.scenario_signature for e in self.entries):
            return False
        key = self._key(entry.metrics, self.objectives)
        for kept in self.entries:
            kept_key = self._key(kept.metrics, self.objectives)
            if kept_key == key or self._dominates(kept.metrics, entry.metrics):
                return False
        self.entries = [
            e for e in self.entries if not self._dominates(entry.metrics, e.metrics)
        ]
        self.entries.append(entry)
        return True

    def sorted_entries(self) -> List[ArchiveEntry]:
        """Entries in canonical order: most harmful first, signature tiebreak."""
        return sorted(
            self.entries,
            key=lambda e: (
                tuple(-value for value in self._key(e.metrics, self.objectives)),
                e.scenario_signature,
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objectives": list(self.objectives),
            "entries": [entry.to_dict() for entry in self.sorted_entries()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioArchive":
        archive = cls(objectives=tuple(data.get("objectives", PARETO_OBJECTIVES)))
        archive.entries = [ArchiveEntry.from_dict(entry) for entry in data["entries"]]
        return archive


# --------------------------------------------------------------------------- #
# Mission evaluation (fitness of one candidate timeline)
# --------------------------------------------------------------------------- #
def mission_metrics(results: Mapping[str, Any]) -> Dict[str, Any]:
    """Harm metrics of one ``scenario-lifecycle`` artifact's results.

    ``degradation`` is how much worse the worst array's calibration
    fitness ends relative to its clean baseline (SAE, lower is better —
    positive degradation means the healer did not fully recover);
    ``steps_degraded`` counts mission steps with a detected fault (the
    time-to-repair proxy: an unrepaired fault re-detects every step).
    """
    baseline = max(results["baseline_fitness"].values())
    final = max(results["final_fitness"].values())
    rows = results["rows"]
    steps_degraded = sum(1 for row in rows if row["fault_class"] != "none")
    n_unrecovered = sum(
        1 for row in rows if row["fault_class"] != "none" and not row["recovered"]
    )
    return {
        "degradation": float(final - baseline),
        "steps_degraded": int(steps_degraded),
        "n_unrecovered": int(n_unrecovered),
        "n_recovered": int(results["n_recovered"]),
        "n_events": int(results["n_seus"]) + int(results["n_lpds"]),
        "baseline_worst_fitness": float(baseline),
        "final_worst_fitness": float(final),
    }


def schedule_event_summary(schedule: EventSchedule) -> Dict[str, Dict[str, int]]:
    """Per-generation event counts, *skipping* empty-event generations.

    A timeline whose tail generations carry no events (all bursts early,
    zero rates) must not produce spurious ``scenario_events`` entries in
    the archive — and a zero-length schedule summarises to ``{}``.
    """
    summary: Dict[str, Dict[str, int]] = {}
    for event in schedule.events:
        bucket = summary.setdefault(str(event.generation), {})
        bucket[event.kind] = bucket.get(event.kind, 0) + 1
    return summary


@dataclass(frozen=True)
class RedTeamConfig(_ConfigBase):
    """Declarative red-team search: the envelope, budgets and fixed policy.

    The *mission* fields pin the fixed healing policy every candidate is
    judged against — all seeds derive from ``seed``, so only the
    scenario varies between candidates (a matched comparison) and one
    config + seed reproduces the entire search bit-for-bit.
    """

    name: str = "red-team"
    seed: int = 2013
    n_generations: int = 8
    n_offspring: int = 4
    mutation_moves: int = 1
    crossover_rate: float = 0.25
    objective: str = "degradation"
    candidate_name: str = "redteam-candidate"
    bounds: ScenarioBounds = ScenarioBounds()
    # The fixed mission/healing policy (the blue team):
    n_arrays: int = 3
    image_side: int = 16
    noise_level: float = 0.1
    backend: str = "reference"
    evolution_generations: int = 6
    healing_generations: int = 5
    mission_offspring: int = 9
    mission_mutation_rate: int = 3
    population_batching: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.bounds, Mapping):
            object.__setattr__(self, "bounds", ScenarioBounds.from_dict(dict(self.bounds)))
        if not isinstance(self.bounds, ScenarioBounds):
            raise TypeError(f"bounds must be a ScenarioBounds, got {type(self.bounds)!r}")
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {sorted(OBJECTIVES)}, got {self.objective!r}"
            )
        if self.n_generations < 0:
            raise ValueError("n_generations must be non-negative")
        if self.n_offspring < 1:
            raise ValueError("n_offspring must be >= 1")
        if self.mutation_moves < 1:
            raise ValueError("mutation_moves must be >= 1")
        if not 0 <= self.crossover_rate <= 1:
            raise ValueError("crossover_rate must be in [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["bounds"] = self.bounds.to_dict()
        return data


def build_mission_campaign(
    config: RedTeamConfig, scenarios: Sequence[FaultScenario], index: int
) -> CampaignSpec:
    """One evaluation campaign: the fixed §V.A lifecycle per candidate.

    Every config seed is pinned to ``config.seed`` — candidates differ
    *only* in their ``evolution.scenario`` grid value, so fitness
    differences are attributable to the timeline alone.
    """
    return CampaignSpec(
        name=f"{config.name}-gen-{index:04d}",
        runner="scenario-lifecycle",
        platform=PlatformConfig(
            n_arrays=config.n_arrays, seed=config.seed, backend=config.backend
        ),
        evolution=EvolutionConfig(
            strategy="parallel",
            n_generations=config.evolution_generations,
            n_offspring=config.mission_offspring,
            mutation_rate=config.mission_mutation_rate,
            seed=config.seed,
            population_batching=config.population_batching,
        ),
        task=TaskSpec(
            task="salt_pepper_denoise",
            image_side=config.image_side,
            noise_level=config.noise_level,
            seed=config.seed,
        ),
        healing=SelfHealingConfig(
            strategy="cascaded",
            imitation_generations=config.healing_generations,
            n_offspring=config.mission_offspring,
            mutation_rate=config.mission_mutation_rate,
            seed=config.seed,
        ),
        grid={"evolution.scenario": [scenario.to_dict() for scenario in scenarios]},
        params={"mission_steps": int(config.bounds.horizon)},
        seed=config.seed,
    )


def evaluate_mission(
    config: RedTeamConfig,
    scenarios: Sequence[FaultScenario],
    executor: str = "serial",
    max_workers: Optional[int] = None,
    store: Optional[CampaignStore] = None,
    cache: Optional[DedupeCache] = None,
    campaign_index: int = 0,
) -> List[Dict[str, Any]]:
    """Judge ``scenarios`` against the fixed healing policy.

    Returns one record per scenario (campaign order): its
    :func:`mission_metrics`, the compiled schedule signature, the run's
    content signature and its campaign status.
    """
    spec = build_mission_campaign(config, scenarios, campaign_index)
    campaign = run_campaign(
        spec, executor=executor, max_workers=max_workers, store=store, cache=cache
    )
    if campaign.n_failed:
        failures = [row for row in campaign.rows() if row["status"] == "failed"]
        raise RuntimeError(
            f"red-team evaluation campaign {spec.name!r} had "
            f"{campaign.n_failed} failed run(s): {failures!r}"
        )
    records: List[Dict[str, Any]] = []
    for run, scenario in zip(spec.expand(), scenarios):
        results = campaign.artifact_for(run).results
        records.append({
            "scenario": scenario,
            "metrics": mission_metrics(results),
            "schedule_signature": results["schedule_signature"],
            "run_signature": run.signature(),
            "status": campaign.status_for(run),
        })
    return records


class _MissionEvaluator:
    """Adapts campaign evaluation to the ES's ``evaluate``/``evaluate_population``.

    Each call becomes one campaign (sequentially indexed, so a re-run of
    the same search resumes every generation's store and hits the dedupe
    cache 100%); every judged candidate is offered to the archive as soon
    as its metrics exist.
    """

    def __init__(
        self,
        config: RedTeamConfig,
        archive: ScenarioArchive,
        executor: str,
        max_workers: Optional[int],
        root: Optional[str],
        cache: Optional[DedupeCache],
    ) -> None:
        self.config = config
        self.archive = archive
        self.executor = executor
        self.max_workers = max_workers
        self.root = root
        self.cache = cache
        self.objective_key = OBJECTIVES[config.objective]
        self.n_campaigns = 0
        self.status_counts: Counter = Counter()

    def _store(self, index: int) -> Optional[CampaignStore]:
        if self.root is None:
            return None
        return CampaignStore(
            os.path.join(self.root, "gens", f"{self.config.name}-gen-{index:04d}")
        )

    def evaluate_population(self, scenarios: Sequence[FaultScenario]) -> List[float]:
        index = self.n_campaigns
        self.n_campaigns += 1
        records = evaluate_mission(
            self.config,
            scenarios,
            executor=self.executor,
            max_workers=self.max_workers,
            store=self._store(index),
            cache=self.cache,
            campaign_index=index,
        )
        fitnesses: List[float] = []
        for record in records:
            scenario = record["scenario"]
            self.status_counts[record["status"]] += 1
            schedule = compile_schedule(
                scenario,
                n_generations=self.config.bounds.horizon,
                n_arrays=self.config.n_arrays,
                seed=self.config.seed,
            )
            self.archive.offer(ArchiveEntry(
                scenario=scenario,
                metrics=record["metrics"],
                scenario_signature=scenario.signature(),
                schedule_signature=record["schedule_signature"],
                run_signature=record["run_signature"],
                generation=index,
                scenario_events=schedule_event_summary(schedule),
            ))
            fitnesses.append(-float(record["metrics"][self.objective_key]))
        return fitnesses

    def evaluate(self, scenario: FaultScenario) -> float:
        return self.evaluate_population([scenario])[0]


# --------------------------------------------------------------------------- #
# The outer search
# --------------------------------------------------------------------------- #
@dataclass
class RedTeamResult:
    """Outcome of one red-team search."""

    config: RedTeamConfig
    archive: ScenarioArchive
    trajectory: List[Dict[str, Any]]
    best_scenario: FaultScenario
    best_fitness: float
    n_evaluations: int
    n_campaigns: int
    status_counts: Dict[str, int]

    def archive_payload(self) -> Dict[str, Any]:
        """The canonical archive document (byte-stable across executors).

        Deliberately excludes anything execution-dependent — wall-clock
        time, cache/resume statuses, worker identity — so the same seed
        yields the same bytes on any executor and backend.
        """
        payload = {
            "config": self.config.to_dict(),
            "objective": self.config.objective,
            "objectives": list(self.archive.objectives),
            "archive": self.archive.to_dict()["entries"],
            "trajectory": [dict(record) for record in self.trajectory],
            "best": {
                "scenario": self.best_scenario.to_dict(),
                "fitness": float(self.best_fitness),
                "objective_value": -float(self.best_fitness),
            },
            "n_evaluations": int(self.n_evaluations),
        }
        payload["signature"] = content_signature(payload)
        return payload

    def archive_json(self) -> str:
        return json.dumps(self.archive_payload(), indent=2, sort_keys=True) + "\n"

    def save_archive(self, path: str) -> str:
        """Write the canonical archive document to ``path``."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.archive_json())
        return path

    def summary(self) -> Dict[str, Any]:
        """Execution summary (this part *may* differ between hot/cold runs)."""
        return {
            "n_evaluations": int(self.n_evaluations),
            "n_campaigns": int(self.n_campaigns),
            "n_archived": len(self.archive.entries),
            "best_objective_value": -float(self.best_fitness),
            "status_counts": dict(sorted(self.status_counts.items())),
        }


def red_team_search(
    config: RedTeamConfig,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    root: Optional[str] = None,
    cache: Union[DedupeCache, str, None] = None,
) -> RedTeamResult:
    """Run the adversarial search; optionally persist under ``root``.

    Parameters
    ----------
    config:
        The search envelope, budgets and fixed healing policy.
    executor:
        Campaign executor name for the per-generation evaluation
        campaigns (``serial``/``thread``/``process``/``distributed``).
    max_workers:
        Worker cap passed through to the executor.
    root:
        Optional persistence root: per-generation campaign stores land
        in ``<root>/gens/``, the dedupe cache in ``<root>/cache`` (unless
        ``cache`` overrides it) and the canonical archive document in
        ``<root>/archive.json``.  Re-running the same search against the
        same root resumes every campaign from its store; re-running
        against a fresh root with the same cache serves every run from
        the dedupe cache.
    cache:
        Optional dedupe cache (or its directory path) shared across
        searches.
    """
    if isinstance(cache, str):
        cache = DedupeCache(cache)
    elif cache is None and root is not None:
        cache = DedupeCache(os.path.join(root, "cache"))

    archive = ScenarioArchive()
    evaluator = _MissionEvaluator(
        config, archive, executor=executor, max_workers=max_workers,
        root=root, cache=cache,
    )
    operator = ScenarioGenotypeOperator(
        config.bounds, archive=archive, crossover_rate=config.crossover_rate
    )
    strategy = OnePlusLambdaES(
        evaluate=evaluator.evaluate,
        n_offspring=config.n_offspring,
        mutation_rate=config.mutation_moves,
        rng=np.random.default_rng(
            np.random.SeedSequence([_REDTEAM_STREAM_TAG, int(config.seed)])
        ),
        evaluate_population=evaluator.evaluate_population,
        mutation_operator=operator,
    )
    outcome = strategy.run(
        config.n_generations,
        seed_genotype=initial_scenario(config.bounds, config.candidate_name),
    )
    trajectory = [
        {
            "generation": record.generation,
            "best_fitness": float(record.best_fitness),
            "parent_fitness": float(record.parent_fitness),
            "accepted": bool(record.accepted),
        }
        for record in outcome.history
    ]
    result = RedTeamResult(
        config=config,
        archive=archive,
        trajectory=trajectory,
        best_scenario=outcome.best.genotype,
        best_fitness=float(outcome.best.fitness),
        n_evaluations=int(outcome.n_evaluations),
        n_campaigns=evaluator.n_campaigns,
        status_counts=dict(evaluator.status_counts),
    )
    if root is not None:
        result.save_archive(os.path.join(root, "archive.json"))
    return result
