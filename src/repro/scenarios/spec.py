"""Declarative fault-scenario timelines.

The paper's self-healing evaluation (§V.A/§V.B) is not "inject one fault,
then recover": SEUs keep *arriving* while the platform scrubs, classifies
and re-evolves.  A :class:`FaultScenario` captures that timeline
declaratively — Poisson SEU arrival rates, burst events, permanent-damage
onsets, creeping degradation and a periodic scrubbing cadence — in a
frozen, JSON-round-tripping spec, exactly like the
:mod:`repro.api.config` dataclasses it composes with
(``EvolutionConfig.scenario``, ``SelfHealingConfig.scenario``, the
``scenario.*`` campaign axes and the ``--scenario`` CLI flag all carry
one of these, by built-in name or as an inline dict).

A scenario is pure *description*; nothing here draws random numbers.
:func:`repro.scenarios.schedule.compile_schedule` turns a scenario into a
deterministic per-generation event schedule from a tagged seed stream,
and :class:`repro.scenarios.runner.ScenarioRunner` applies that schedule
to a platform mid-evolution.

Examples
--------
>>> from repro.scenarios import FaultScenario, SCENARIOS
>>> storm = SCENARIOS.get("seu-storm")
>>> FaultScenario.from_json(storm.to_json()) == storm
True
>>> sorted(SCENARIOS.names())[:3]
['creeping-permanent', 'mixed-burst', 'quiet']
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api.config import _ConfigBase
from repro.api.registry import Registry

__all__ = [
    "FaultScenario",
    "SCENARIOS",
    "register_scenario",
    "resolve_scenario",
    "normalise_scenario_field",
    "scenario_from_cli_arg",
    "HAND_WRITTEN_SCENARIOS",
]


def _normalise_events(value: Any, label: str) -> Tuple[Tuple[int, int], ...]:
    """Validate and canonicalise a ``((generation, count), ...)`` field.

    Accepts any sequence of 2-sequences (tuples after construction, lists
    after a JSON round trip) and returns a generation-sorted tuple of
    ``(int, int)`` pairs, so equal timelines compare equal regardless of
    how they were written down.
    """
    try:
        pairs = [(int(generation), int(count)) for generation, count in value]
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"{label} must be a sequence of (generation, count) pairs, got {value!r}"
        ) from exc
    for generation, count in pairs:
        if generation < 0:
            raise ValueError(f"{label} generations must be >= 0, got {generation}")
        if count < 1:
            raise ValueError(f"{label} counts must be >= 1, got {count}")
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class FaultScenario(_ConfigBase):
    """One declarative fault timeline.

    Parameters
    ----------
    name:
        Identity label recorded in schedules, artifacts and campaign
        overrides.
    seu_rate:
        Poisson arrival rate of SEUs, in expected upsets per generation
        across the whole fabric (the §II transient-fault environment).
    lpd_rate:
        Poisson arrival rate of *permanent* damage per generation —
        accumulating degradation (aging / high-energy particles).
    seu_bursts:
        ``((generation, count), ...)`` one-off SEU storms: ``count``
        extra upsets land at the start of ``generation``.
    lpd_onsets:
        ``((generation, count), ...)`` permanent-damage onsets.
    scrub_period:
        Periodic scrubbing cadence: a whole-fabric scrub fires at the
        start of every generation ``g`` with ``g % scrub_period == 0``
        (``g > 0``).  ``0`` disables background scrubbing.
    seed:
        Optional explicit seed of the compiled event schedule.  When
        ``None`` (the default) the schedule derives from the platform's
        fabric seed under the scenario stream tag, so one session seed
        reproduces the whole timeline (the PR 4 tagged-stream contract).
    """

    name: str = "quiet"
    seu_rate: float = 0.0
    lpd_rate: float = 0.0
    seu_bursts: Tuple[Tuple[int, int], ...] = ()
    lpd_onsets: Tuple[Tuple[int, int], ...] = ()
    scrub_period: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be a non-empty string")
        if self.seu_rate < 0 or self.lpd_rate < 0:
            raise ValueError("scenario arrival rates must be non-negative")
        if self.scrub_period < 0:
            raise ValueError(f"scrub_period must be >= 0, got {self.scrub_period}")
        object.__setattr__(
            self, "seu_bursts", _normalise_events(self.seu_bursts, "seu_bursts")
        )
        object.__setattr__(
            self, "lpd_onsets", _normalise_events(self.lpd_onsets, "lpd_onsets")
        )

    @property
    def is_quiet(self) -> bool:
        """Whether this scenario can never produce an event."""
        return (
            self.seu_rate == 0
            and self.lpd_rate == 0
            and not self.seu_bursts
            and not self.lpd_onsets
            and self.scrub_period == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view; event tuples become lists for JSON friendliness."""
        data = super().to_dict()
        data["seu_bursts"] = [list(pair) for pair in self.seu_bursts]
        data["lpd_onsets"] = [list(pair) for pair in self.lpd_onsets]
        return data

    def copy(self) -> "FaultScenario":
        """Return ``self`` — scenarios are frozen, so no copy is needed.

        Exists so a scenario can serve as an
        :class:`~repro.ea.chromosome.Individual` genotype in the
        adversarial search (:mod:`repro.scenarios.search`), where the
        (1+λ) strategy copies genotypes when recording parents.
        """
        return self


#: Registry of built-in (and plugin) fault scenarios, keyed by name.
SCENARIOS = Registry("fault scenario")


def register_scenario(name: str, scenario: Optional[FaultScenario] = None, *,
                      replace: bool = False):
    """Register a scenario; usable directly or as a decorator."""
    return SCENARIOS.register(name, scenario, replace=replace)


#: The hand-written scenario family (and the ``scenario-sweep`` default
#: sweep set).  Each reproduces one §V.A/§V.B régime.  The full built-in
#: set — :data:`repro.scenarios.BUILTIN_SCENARIOS` — additionally contains
#: the frozen red-team worst cases of :mod:`repro.scenarios.frozen`.
HAND_WRITTEN_SCENARIOS: Tuple[str, ...] = (
    "single-seu",
    "seu-storm",
    "creeping-permanent",
    "scrub-race",
    "mixed-burst",
)

register_scenario("quiet", FaultScenario(name="quiet"))
register_scenario(
    # The classic textbook case: one transient upset, repaired by the next
    # periodic scrub (§V.A steps f-h classify it as transient).
    "single-seu",
    FaultScenario(name="single-seu", seu_bursts=((2, 1),), scrub_period=8),
)
register_scenario(
    # Sustained SEU pressure plus one storm burst: scrubbing keeps up only
    # between bursts, so faults are routinely present *during* generations.
    "seu-storm",
    FaultScenario(name="seu-storm", seu_rate=0.6, seu_bursts=((4, 6),), scrub_period=6),
)
register_scenario(
    # Accumulating permanent damage that scrubbing cannot remove — the
    # régime where only evolutionary repair helps (§V.A step i).
    "creeping-permanent",
    FaultScenario(name="creeping-permanent", lpd_rate=0.08, scrub_period=8),
)
register_scenario(
    # Arrival rate faster than the scrub cadence repairs: the race between
    # upsets and the scrubber the paper's background motivates.
    "scrub-race",
    FaultScenario(name="scrub-race", seu_rate=1.2, scrub_period=2),
)
register_scenario(
    # Everything at once: background SEUs, one storm, one permanent onset
    # and creeping degradation under a periodic scrub.
    "mixed-burst",
    FaultScenario(
        name="mixed-burst",
        seu_rate=0.25,
        lpd_rate=0.03,
        seu_bursts=((3, 3),),
        lpd_onsets=((6, 1),),
        scrub_period=5,
    ),
)


def resolve_scenario(
    value: Union[str, Mapping[str, Any], FaultScenario, None],
) -> Optional[FaultScenario]:
    """Normalise any accepted scenario form into a :class:`FaultScenario`.

    Accepts ``None`` (no scenario), a registered name, an inline mapping
    (e.g. the JSON-round-tripped ``EvolutionConfig.scenario`` field) or an
    existing :class:`FaultScenario`.
    """
    if value is None:
        return None
    if isinstance(value, FaultScenario):
        return value
    if isinstance(value, str):
        return SCENARIOS.get(value)
    if isinstance(value, Mapping):
        return FaultScenario.from_dict(dict(value))
    raise TypeError(
        f"scenario must be None, a registered name, a mapping or a "
        f"FaultScenario, got {type(value)!r}"
    )


def normalise_scenario_field(
    value: Union[str, Mapping[str, Any], FaultScenario, None],
) -> Union[str, Mapping[str, Any], None]:
    """Validate a config-field scenario value and return its canonical form.

    Names stay names (validated against the registry so a typo fails at
    config-build time); inline scenarios are validated through
    :class:`FaultScenario` and stored as a read-only normalised dict, so
    config equality survives JSON round trips.
    """
    if value is None:
        return None
    if isinstance(value, str):
        SCENARIOS.get(value)  # raises UnknownStrategyError on a typo
        return value
    return MappingProxyType(resolve_scenario(value).to_dict())


def scenario_from_cli_arg(value: Optional[str]) -> Union[str, Dict[str, Any], None]:
    """Interpret a ``--scenario`` CLI value.

    Registered scenario names always win (a stray file called ``quiet``
    in the working directory cannot shadow the built-in); otherwise the
    value is treated as the path of a ``FaultScenario`` JSON file.
    Returns the form :class:`~repro.api.config.EvolutionConfig` accepts
    for its ``scenario`` field.
    """
    if value is None:
        return None
    if value in SCENARIOS.names():
        return value
    if value.endswith(".json") or os.path.exists(value):
        if not os.path.isfile(value):
            raise ValueError(
                f"--scenario {value!r} is neither a registered scenario name "
                f"({', '.join(sorted(SCENARIOS.names()))}) nor an existing "
                "FaultScenario JSON file"
            )
        with open(value, "r", encoding="utf-8") as handle:
            return FaultScenario.from_json(handle.read()).to_dict()
    SCENARIOS.get(value)  # raises UnknownStrategyError listing the names
    return value
