"""Image quality metrics.

The paper's fitness function is the pixel-aggregated Mean Absolute Error
(MAE) computed by a hardware fitness unit inside each Array Control Block.
The figures report the *aggregated* absolute error (sum over pixels), e.g.
"a MAE fitness value of around 8000" for a 128x128 image, so both the sum
(:func:`sae`) and per-pixel mean (:func:`mae`) forms are provided; the
platform uses :func:`sae` as its fitness to match the paper's scale.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sae", "sae_batch", "mae", "mse", "psnr"]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError("expected 2-D grayscale images")
    return a, b


def sae(output: np.ndarray, reference: np.ndarray) -> float:
    """Sum of absolute errors (the paper's aggregated MAE fitness; lower is better)."""
    output, reference = _check_pair(output, reference)
    diff = np.abs(output.astype(np.int64) - reference.astype(np.int64))
    return float(diff.sum())


def sae_batch(outputs: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Aggregated absolute error of a ``(B, H, W)`` batch vs one reference.

    The vectorised form of :func:`sae` used by the batched and population
    evaluation paths: every entry equals ``sae(outputs[b], reference)``
    bit for bit.  For uint8 inputs (the hardware pixel format) the
    differences fit int16 exactly and accumulate in int64; other dtypes
    take :func:`sae`'s own int64 arithmetic, so wide or float values are
    truncated identically to the scalar path instead of wrapping.
    """
    outputs = np.asarray(outputs)
    reference = np.asarray(reference)
    if outputs.ndim != 3 or outputs.shape[1:] != reference.shape:
        raise ValueError(
            f"outputs shape {outputs.shape} does not match reference {reference.shape}"
        )
    if outputs.dtype == np.uint8 and reference.dtype == np.uint8:
        diffs = np.abs(outputs.astype(np.int16) - reference.astype(np.int16))
    else:
        diffs = np.abs(outputs.astype(np.int64) - reference.astype(np.int64))
    return diffs.sum(axis=(1, 2), dtype=np.int64)


def mae(output: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute error per pixel."""
    output, reference = _check_pair(output, reference)
    return sae(output, reference) / output.size


def mse(output: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error per pixel."""
    output, reference = _check_pair(output, reference)
    diff = output.astype(np.float64) - reference.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(output: np.ndarray, reference: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.  Returns ``inf`` for identical images."""
    err = mse(output, reference)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / err)
