"""Image quality metrics.

The paper's fitness function is the pixel-aggregated Mean Absolute Error
(MAE) computed by a hardware fitness unit inside each Array Control Block.
The figures report the *aggregated* absolute error (sum over pixels), e.g.
"a MAE fitness value of around 8000" for a 128x128 image, so both the sum
(:func:`sae`) and per-pixel mean (:func:`mae`) forms are provided; the
platform uses :func:`sae` as its fitness to match the paper's scale.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sae", "mae", "mse", "psnr"]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError("expected 2-D grayscale images")
    return a, b


def sae(output: np.ndarray, reference: np.ndarray) -> float:
    """Sum of absolute errors (the paper's aggregated MAE fitness; lower is better)."""
    output, reference = _check_pair(output, reference)
    diff = np.abs(output.astype(np.int64) - reference.astype(np.int64))
    return float(diff.sum())


def mae(output: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute error per pixel."""
    output, reference = _check_pair(output, reference)
    return sae(output, reference) / output.size


def mse(output: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error per pixel."""
    output, reference = _check_pair(output, reference)
    diff = output.astype(np.float64) - reference.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(output: np.ndarray, reference: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.  Returns ``inf`` for identical images."""
    err = mse(output, reference)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / err)
