"""Image substrate: synthetic test images, noise models, baseline filters, metrics.

The paper evolves window-based image filters on a reconfigurable systolic
array.  Its training/reference images are stored in flash memory on the
target board; here we generate equivalent synthetic images procedurally
(gradients, checkerboards, shapes, texture mixes) so that the same code
paths — training image in, filtered image out, MAE against a reference —
are exercised without any external data.

Public API
----------
Images          : :func:`make_test_image`, :func:`gradient_image`,
                  :func:`checkerboard_image`, :func:`shapes_image`,
                  :func:`texture_image`, :class:`ImagePair`
Noise           : :func:`add_salt_and_pepper`, :func:`add_gaussian_noise`,
                  :func:`add_impulse_burst`
Baseline filters: :func:`median_filter`, :func:`mean_filter`,
                  :func:`gaussian_filter`, :func:`sobel_edges`,
                  :func:`identity_filter`
Metrics         : :func:`mae`, :func:`sae`, :func:`mse`, :func:`psnr`
"""

from repro.imaging.images import (
    ImagePair,
    checkerboard_image,
    gradient_image,
    make_test_image,
    make_training_pair,
    shapes_image,
    texture_image,
)
from repro.imaging.noise import (
    add_gaussian_noise,
    add_impulse_burst,
    add_salt_and_pepper,
)
from repro.imaging.filters import (
    gaussian_filter,
    identity_filter,
    mean_filter,
    median_filter,
    sobel_edges,
)
from repro.imaging.metrics import mae, mse, psnr, sae

__all__ = [
    "ImagePair",
    "checkerboard_image",
    "gradient_image",
    "make_test_image",
    "make_training_pair",
    "shapes_image",
    "texture_image",
    "add_gaussian_noise",
    "add_impulse_burst",
    "add_salt_and_pepper",
    "gaussian_filter",
    "identity_filter",
    "mean_filter",
    "median_filter",
    "sobel_edges",
    "mae",
    "mse",
    "psnr",
    "sae",
]
