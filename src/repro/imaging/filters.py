"""Baseline (non-evolved) window filters.

The paper compares the evolved cascade against the conventional reference
filter for salt-and-pepper noise — the 3x3 median filter — and evolves
edge-detection and smoothing behaviour against Sobel / Gaussian references.
These conventional filters are implemented here so that every comparison in
the evaluation section has a concrete, runnable baseline.

All filters accept and return 8-bit grayscale images and use the same
border convention as the evolvable array: the output is computed for every
pixel using a 3x3 neighbourhood obtained with edge replication, so the
output has the same shape as the input.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "identity_filter",
    "median_filter",
    "mean_filter",
    "gaussian_filter",
    "sobel_edges",
]


def _check_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise TypeError(f"expected uint8 image, got dtype {image.dtype}")
    return image


def identity_filter(image: np.ndarray) -> np.ndarray:
    """Pass-through filter (returns a copy)."""
    return _check_image(image).copy()


def median_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filter — the paper's conventional reference for impulse noise."""
    image = _check_image(image)
    if size < 1 or size % 2 == 0:
        raise ValueError(f"size must be an odd positive integer, got {size}")
    return ndimage.median_filter(image, size=size, mode="nearest").astype(np.uint8)


def mean_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Box (mean) filter over a ``size`` x ``size`` window."""
    image = _check_image(image)
    if size < 1 or size % 2 == 0:
        raise ValueError(f"size must be an odd positive integer, got {size}")
    out = ndimage.uniform_filter(image.astype(np.float64), size=size, mode="nearest")
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def gaussian_filter(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Gaussian smoothing filter."""
    image = _check_image(image)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    out = ndimage.gaussian_filter(image.astype(np.float64), sigma=sigma, mode="nearest")
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def sobel_edges(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude, normalised to the 8-bit range.

    Used as the reference image when evolving an edge-detection filter
    (paper §III.A: "if the training image is the noise-free one, and the
    reference is set to the edge detected image, the circuit will converge
    to an edge-detection filter").
    """
    image = _check_image(image)
    img = image.astype(np.float64)
    gx = ndimage.sobel(img, axis=1, mode="nearest")
    gy = ndimage.sobel(img, axis=0, mode="nearest")
    magnitude = np.hypot(gx, gy)
    peak = magnitude.max()
    if peak > 0:
        magnitude = magnitude * (255.0 / peak)
    return np.clip(np.rint(magnitude), 0, 255).astype(np.uint8)
