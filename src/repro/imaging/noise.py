"""Noise models used to build training images.

The paper's headline filtering task is removal of salt-and-pepper impulse
noise (Fig. 18 uses a 40 % noise density); Gaussian noise and localised
impulse bursts are provided for the additional cascaded-filtering scenarios
(independent cascaded mode: denoise, then smooth, then detect edges).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["add_salt_and_pepper", "add_gaussian_noise", "add_impulse_burst"]


def _as_rng(rng: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _check_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise TypeError(f"expected uint8 image, got dtype {image.dtype}")
    return image


def add_salt_and_pepper(
    image: np.ndarray,
    density: float,
    rng: Union[int, np.random.Generator, None] = None,
    salt_vs_pepper: float = 0.5,
) -> np.ndarray:
    """Corrupt ``image`` with salt-and-pepper impulse noise.

    Parameters
    ----------
    image:
        Clean uint8 grayscale image.
    density:
        Fraction of pixels replaced by an impulse, in ``[0, 1]``.
    rng:
        Seed or generator.
    salt_vs_pepper:
        Fraction of the corrupted pixels set to 255 (the rest set to 0).

    Returns
    -------
    numpy.ndarray
        A new uint8 array; the input is not modified.
    """
    image = _check_image(image)
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= salt_vs_pepper <= 1.0:
        raise ValueError(f"salt_vs_pepper must be in [0, 1], got {salt_vs_pepper}")
    rng = _as_rng(rng)
    out = image.copy()
    if density == 0.0:
        return out
    corrupt = rng.random(image.shape) < density
    salt = rng.random(image.shape) < salt_vs_pepper
    out[corrupt & salt] = 255
    out[corrupt & ~salt] = 0
    return out


def add_gaussian_noise(
    image: np.ndarray,
    sigma: float,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Add zero-mean Gaussian noise with standard deviation ``sigma`` (in gray levels)."""
    image = _check_image(image)
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = _as_rng(rng)
    noisy = image.astype(np.float64) + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0, 255).astype(np.uint8)


def add_impulse_burst(
    image: np.ndarray,
    n_bursts: int = 4,
    burst_size: int = 8,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Corrupt small square regions completely (localised impulse bursts).

    Models clustered upsets (e.g. a damaged sensor region feeding the
    filter), a harder case for window-based filters than uniformly spread
    impulses because whole windows may be corrupted.
    """
    image = _check_image(image)
    if n_bursts < 0:
        raise ValueError("n_bursts must be >= 0")
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    rng = _as_rng(rng)
    out = image.copy()
    h, w = image.shape
    for _ in range(n_bursts):
        y = int(rng.integers(0, max(1, h - burst_size)))
        x = int(rng.integers(0, max(1, w - burst_size)))
        value = 255 if rng.random() < 0.5 else 0
        out[y : y + burst_size, x : x + burst_size] = value
    return out
