"""Synthetic grayscale test images.

All images are 8-bit grayscale (``numpy.uint8``) two-dimensional arrays, the
pixel format processed by the evolvable array (the paper's platform streams
8-bit pixels through the 3x3 sliding window).

The generators are deterministic given a seed, which keeps every experiment
in the benchmark harness reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = [
    "ImagePair",
    "gradient_image",
    "checkerboard_image",
    "shapes_image",
    "texture_image",
    "make_test_image",
    "make_training_pair",
]

#: Default image side used throughout the experiments (paper: 128x128).
DEFAULT_SIZE = 128


def _as_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _validate_size(size: int) -> int:
    if size < 8:
        raise ValueError(f"image size must be >= 8 pixels, got {size}")
    return int(size)


def gradient_image(size: int = DEFAULT_SIZE, direction: str = "diagonal") -> np.ndarray:
    """Smooth intensity ramp.

    Parameters
    ----------
    size:
        Side length of the square image in pixels.
    direction:
        ``"horizontal"``, ``"vertical"`` or ``"diagonal"``.

    Returns
    -------
    numpy.ndarray
        ``(size, size)`` uint8 image.
    """
    size = _validate_size(size)
    ramp = np.linspace(0.0, 255.0, size)
    if direction == "horizontal":
        img = np.tile(ramp, (size, 1))
    elif direction == "vertical":
        img = np.tile(ramp[:, None], (1, size))
    elif direction == "diagonal":
        img = (ramp[None, :] + ramp[:, None]) / 2.0
    else:
        raise ValueError(f"unknown gradient direction: {direction!r}")
    return img.astype(np.uint8)


def checkerboard_image(
    size: int = DEFAULT_SIZE, tile: int = 16, low: int = 32, high: int = 224
) -> np.ndarray:
    """Checkerboard with alternating ``low`` / ``high`` tiles.

    Checkerboards have dense edges in both directions, which makes them a
    useful training target for edge-detection evolution.
    """
    size = _validate_size(size)
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    if not (0 <= low <= 255 and 0 <= high <= 255):
        raise ValueError("low/high must be valid 8-bit intensities")
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    board = ((yy // tile) + (xx // tile)) % 2
    return np.where(board == 0, np.uint8(low), np.uint8(high)).astype(np.uint8)


def shapes_image(size: int = DEFAULT_SIZE, seed: Union[int, np.random.Generator, None] = 0,
                 n_shapes: int = 12) -> np.ndarray:
    """Random rectangles and discs on a mid-gray background.

    Mimics the structured content (objects with sharp borders over smooth
    regions) of the photographic test images used in the paper.
    """
    size = _validate_size(size)
    rng = _as_rng(seed)
    img = np.full((size, size), 128, dtype=np.float64)
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    for _ in range(n_shapes):
        intensity = float(rng.integers(0, 256))
        kind = rng.integers(0, 2)
        cy, cx = rng.integers(0, size, size=2)
        extent = int(rng.integers(size // 16, size // 4))
        if kind == 0:  # rectangle
            y0, y1 = max(0, cy - extent), min(size, cy + extent)
            x0, x1 = max(0, cx - extent), min(size, cx + extent)
            img[y0:y1, x0:x1] = intensity
        else:  # disc
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= extent ** 2
            img[mask] = intensity
    return np.clip(img, 0, 255).astype(np.uint8)


def texture_image(size: int = DEFAULT_SIZE, seed: Union[int, np.random.Generator, None] = 0,
                  smoothness: int = 4) -> np.ndarray:
    """Band-limited random texture (smoothed white noise).

    Produces natural-image-like second order statistics: most energy at low
    spatial frequencies, some high-frequency detail.  ``smoothness`` is the
    half-width of the separable box kernel applied to white noise.
    """
    size = _validate_size(size)
    if smoothness < 1:
        raise ValueError(f"smoothness must be >= 1, got {smoothness}")
    rng = _as_rng(seed)
    noise = rng.random((size, size))
    kernel = np.ones(2 * smoothness + 1) / (2 * smoothness + 1)
    # Separable smoothing along both axes; wrap mode keeps statistics uniform.
    smoothed = np.apply_along_axis(
        lambda row: np.convolve(np.pad(row, smoothness, mode="wrap"), kernel, mode="valid"),
        1,
        noise,
    )
    smoothed = np.apply_along_axis(
        lambda col: np.convolve(np.pad(col, smoothness, mode="wrap"), kernel, mode="valid"),
        0,
        smoothed,
    )
    smoothed -= smoothed.min()
    peak = smoothed.max()
    if peak > 0:
        smoothed /= peak
    return (smoothed * 255.0).astype(np.uint8)


def make_test_image(
    size: int = DEFAULT_SIZE,
    seed: Union[int, np.random.Generator, None] = 0,
    kind: str = "composite",
) -> np.ndarray:
    """Produce a standard test image.

    ``kind`` may be ``"gradient"``, ``"checkerboard"``, ``"shapes"``,
    ``"texture"`` or ``"composite"``.  The composite image blends shapes,
    texture and a gradient so that a single image contains flat regions,
    edges and fine detail — the content mix a denoising filter has to cope
    with, and the closest synthetic stand-in for the photographic image in
    the paper's Fig. 18.
    """
    size = _validate_size(size)
    rng = _as_rng(seed)
    if kind == "gradient":
        return gradient_image(size)
    if kind == "checkerboard":
        return checkerboard_image(size)
    if kind == "shapes":
        return shapes_image(size, rng)
    if kind == "texture":
        return texture_image(size, rng)
    if kind == "composite":
        shapes = shapes_image(size, rng).astype(np.float64)
        texture = texture_image(size, rng).astype(np.float64)
        grad = gradient_image(size).astype(np.float64)
        img = 0.55 * shapes + 0.25 * texture + 0.20 * grad
        return np.clip(img, 0, 255).astype(np.uint8)
    raise ValueError(f"unknown image kind: {kind!r}")


@dataclass(frozen=True)
class ImagePair:
    """A (training, reference) image pair defining a filtering task.

    In the paper the *training* image is what the array sees at its input
    during evolution, and the *reference* image is what the hardware MAE
    unit compares the array output against.  Choosing the pair chooses the
    task: noisy/clean yields a denoiser, clean/edge-map yields an edge
    detector (paper §III.A).
    """

    training: np.ndarray
    reference: np.ndarray
    name: str = "unnamed"

    def __post_init__(self) -> None:
        if self.training.shape != self.reference.shape:
            raise ValueError(
                "training and reference images must have identical shapes; "
                f"got {self.training.shape} vs {self.reference.shape}"
            )
        if self.training.ndim != 2:
            raise ValueError("images must be 2-D grayscale arrays")
        if self.training.dtype != np.uint8 or self.reference.dtype != np.uint8:
            raise TypeError("images must be uint8")

    @property
    def shape(self) -> tuple:
        """Image shape shared by both members of the pair."""
        return self.training.shape

    @property
    def n_pixels(self) -> int:
        """Number of pixels per image."""
        return int(self.training.size)


def make_training_pair(
    task: str = "salt_pepper_denoise",
    size: int = DEFAULT_SIZE,
    seed: Union[int, np.random.Generator, None] = 0,
    noise_level: float = 0.05,
    image_kind: str = "composite",
    clean: Optional[np.ndarray] = None,
) -> ImagePair:
    """Build a training/reference :class:`ImagePair` for a named task.

    Parameters
    ----------
    task:
        One of:

        ``"salt_pepper_denoise"``
            training = clean image corrupted by salt-and-pepper noise at
            ``noise_level`` density, reference = clean image.
        ``"gaussian_denoise"``
            training = clean + additive Gaussian noise with standard
            deviation ``255 * noise_level``, reference = clean image.
        ``"edge_detect"``
            training = clean image, reference = Sobel edge magnitude.
        ``"smoothing"``
            training = clean image, reference = Gaussian-smoothed image.
        ``"identity"``
            training = reference = clean image (useful for calibration and
            for testing that evolution converges to a pass-through circuit).
    size:
        Image side in pixels (ignored when ``clean`` is given).
    seed:
        Seed or generator controlling both image synthesis and noise.
    noise_level:
        Noise density (salt-and-pepper) or relative sigma (Gaussian).
    image_kind:
        Passed to :func:`make_test_image` when ``clean`` is not supplied.
    clean:
        Optional externally supplied clean image (uint8, 2-D).
    """
    from repro.imaging.filters import gaussian_filter, sobel_edges
    from repro.imaging.noise import add_gaussian_noise, add_salt_and_pepper

    rng = _as_rng(seed)
    if clean is None:
        clean = make_test_image(size=size, seed=rng, kind=image_kind)
    else:
        clean = np.asarray(clean)
        if clean.dtype != np.uint8 or clean.ndim != 2:
            raise TypeError("clean image must be a 2-D uint8 array")

    if task == "salt_pepper_denoise":
        noisy = add_salt_and_pepper(clean, density=noise_level, rng=rng)
        return ImagePair(training=noisy, reference=clean, name=task)
    if task == "gaussian_denoise":
        noisy = add_gaussian_noise(clean, sigma=255.0 * noise_level, rng=rng)
        return ImagePair(training=noisy, reference=clean, name=task)
    if task == "edge_detect":
        return ImagePair(training=clean, reference=sobel_edges(clean), name=task)
    if task == "smoothing":
        return ImagePair(training=clean, reference=gaussian_filter(clean), name=task)
    if task == "identity":
        return ImagePair(training=clean, reference=clean.copy(), name=task)
    raise ValueError(f"unknown task: {task!r}")
