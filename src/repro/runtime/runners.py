"""Campaign runners: the string-keyed registry of per-run workloads.

A runner is a callable ``(RunSpec) -> RunArtifact`` registered by name,
so the process executor can resolve it inside a worker from the shipped
JSON run description alone.  The built-in ``evolve`` runner covers the
common case — one :class:`~repro.api.session.EvolutionSession` per run —
and the experiment modules register their own runners (fault-sweep
arrays, cascade arrangements) the same way::

    from repro.runtime.runners import register_runner

    @register_runner("my-workload")
    def run_my_workload(run):
        ...
        return RunArtifact(kind="my-workload", results={...})
"""

from __future__ import annotations

from typing import Any, Callable

from repro.api.artifact import RunArtifact
from repro.api.registry import Registry
from repro.api.session import EvolutionSession

__all__ = ["RUNNERS", "register_runner", "ensure_runners_loaded"]

#: Registry of campaign runners, keyed by name.
RUNNERS = Registry("campaign runner")


def register_runner(name: str, obj: Any = None, *, replace: bool = False):
    """Register a campaign runner; usable directly or as a decorator."""
    return RUNNERS.register(name, obj, replace=replace)


def ensure_runners_loaded() -> None:
    """Import every module that registers built-in campaign runners.

    Called at the worker boundary so a freshly spawned process (which has
    not imported the experiment modules) resolves the same runner names
    as the parent.
    """
    import repro.experiments  # noqa: F401  (imports register experiment runners)


@register_runner("evolve")
def run_evolve(run) -> RunArtifact:
    """The default runner: one evolution session per run.

    Builds the platform from ``run.platform``, runs ``run.evolution`` on
    ``run.task`` and returns the session's :class:`RunArtifact`.
    """
    session = EvolutionSession(run.platform, run.evolution)
    return session.evolve(run.task)


def resolve(name: str) -> Callable:
    """Look up a runner by name (loading the built-ins first)."""
    ensure_runners_loaded()
    return RUNNERS.get(name)
