"""The ``repro-ehw cache`` subcommand: persistent fitness-cache maintenance.

Operates on the persistent cross-run fitness cache
(:class:`~repro.backends.fitness_cache.PersistentFitnessCache`) that the
``--fitness-cache`` knob of the evolution experiments and the campaign
command write to.  Three actions:

* ``stats`` — entry count and index size of the cache;
* ``prune`` — compact the append-only index, dropping duplicate and
  corrupt lines (first-write-wins, so surviving values are unchanged);
* ``verify`` — integrity audit: every index line must parse, keys must
  be well-formed fitness signatures, values must be exact non-negative
  integral SAE totals, and duplicated keys must agree.

Registered through the same :class:`~repro.api.experiment.ExperimentSpec`
mechanism as the paper experiments, so it inherits the central ``--json``
artifact plumbing, and it follows the ``repro-ehw lint`` exit-code
contract: ``0`` clean, ``1`` findings (verify problems), ``2`` usage
errors — propagated by :func:`repro.cli.main` from
``results["exit_code"]``.
"""

from __future__ import annotations

import argparse

from repro.api.artifact import RunArtifact
from repro.api.experiment import ExperimentSpec, register_experiment
from repro.backends.fitness_cache import PersistentFitnessCache

__all__ = ["cache_main"]

_ACTIONS = ("stats", "prune", "verify")


def _configure_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action",
        choices=_ACTIONS,
        help="stats: summarise the cache; prune: compact the index "
             "(drop duplicate/corrupt lines); verify: audit index integrity",
    )
    parser.add_argument(
        "root",
        metavar="DIR",
        help="cache directory (the --fitness-cache value of the runs that "
             "populated it, or <campaign store>/fitness_cache)",
    )


def cache_main(args: argparse.Namespace) -> RunArtifact:
    """Run one cache maintenance action from parsed CLI arguments."""
    config = {"action": args.action, "root": str(args.root)}
    try:
        cache = PersistentFitnessCache(args.root)
        summary = cache.summary()
        if args.action == "stats":
            results = {**summary, "exit_code": 0}
        elif args.action == "prune":
            pruned = cache.prune()
            results = {**pruned, **cache.summary(), "exit_code": 0}
        else:  # verify
            problems = cache.verify()
            results = {
                **summary,
                "problems": problems,
                "exit_code": 1 if problems else 0,
            }
    except OSError as exc:
        return RunArtifact(
            kind="cache",
            config=config,
            results={"errors": [str(exc)], "exit_code": 2},
            timing={},
        )
    return RunArtifact(kind="cache", config=config, results=results, timing={})


def _render_cache(artifact: RunArtifact) -> None:
    results = artifact.results
    for error in results.get("errors", []):
        print(f"error: {error}")
    if "errors" in results:
        return
    action = artifact.config["action"]
    exists = "yes" if results.get("exists") else "no"
    print(f"cache root:   {results.get('root')}")
    print(f"exists:       {exists}")
    print(f"entries:      {results.get('entries', 0)}")
    print(f"index bytes:  {results.get('index_bytes', 0)}")
    if action == "prune":
        print(
            f"prune:        kept {results.get('kept', 0)} of "
            f"{results.get('lines', 0)} line(s), dropped {results.get('dropped', 0)}"
        )
    elif action == "verify":
        problems = results.get("problems", [])
        if problems:
            for problem in problems:
                print(f"problem:      {problem}")
            print(f"verify:       {len(problems)} problem(s) found")
        else:
            print("verify:       clean")


register_experiment(ExperimentSpec(
    name="cache",
    help="inspect, compact or verify a persistent fitness cache",
    configure=_configure_cache,
    run=cache_main,
    render=_render_cache,
))
