"""The campaign engine: expand, dispatch, persist, aggregate.

:func:`run_campaign` is the one call behind the ``repro-ehw campaign``
subcommand and the migrated experiment sweeps: it expands a
:class:`~repro.runtime.campaign.CampaignSpec` into runs, skips the ones
an attached :class:`~repro.runtime.store.CampaignStore` already holds,
dispatches the rest through the selected executor and returns a
:class:`CampaignResult` whose campaign-level
:class:`~repro.api.artifact.RunArtifact` summarises every run.

The worker boundary (:func:`execute_run_payload`) takes and returns JSON
strings only; per-run failures are captured as structured error payloads
rather than exceptions, so one bad grid point cannot take down a sweep.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.artifact import RunArtifact
from repro.runtime.campaign import CampaignSpec, RunSpec
from repro.runtime.executors import EXECUTORS, CampaignExecutor
from repro.runtime.runners import RUNNERS, ensure_runners_loaded
from repro.runtime.store import CampaignStore, DedupeCache

__all__ = [
    "CampaignRunError",
    "CampaignResult",
    "run_campaign",
    "execute_run_payload",
    "prime_worker",
]


class CampaignRunError(RuntimeError):
    """Raised when a caller needs a failed run's artifact.

    Carries the worker's captured traceback, so consumers that treat any
    failure as fatal (the migrated experiments do) surface the original
    error instead of an opaque missing-key lookup.
    """


def prime_worker() -> None:
    """Process-pool initializer: load the runner registry in the worker."""
    ensure_runners_loaded()


def execute_run_payload(payload: str) -> str:
    """Execute one JSON-serialised :class:`RunSpec`; return a JSON outcome.

    The returned payload is ``{"status": "completed", "artifact": {...}}``
    or ``{"status": "failed", "error": "<traceback>"}`` — never an
    exception, so executors treat worker results uniformly.
    """
    ensure_runners_loaded()
    run = RunSpec.from_json(payload)
    try:
        runner = RUNNERS.get(run.runner)
        artifact = runner(run)
        if not isinstance(artifact, RunArtifact):
            raise TypeError(
                f"campaign runner {run.runner!r} must return a RunArtifact, "
                f"got {type(artifact)!r}"
            )
        artifact.provenance["campaign"] = {
            "name": run.campaign,
            "run_id": run.run_id,
            "index": run.index,
            "runner": run.runner,
            "seed": run.seed,
            "overrides": dict(run.overrides),
        }
        outcome = {"status": "completed", "artifact": artifact.to_dict()}
    except Exception:
        outcome = {"status": "failed", "error": traceback.format_exc()}
    return json.dumps(outcome)


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` call."""

    spec: CampaignSpec
    executor: str
    runs: List[RunSpec]
    artifacts: Dict[str, RunArtifact] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    resumed_run_ids: List[str] = field(default_factory=list)
    cached_run_ids: List[str] = field(default_factory=list)
    store_root: Optional[str] = None
    wall_time_s: float = 0.0

    @property
    def n_completed(self) -> int:
        return len(self.artifacts)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def n_cached(self) -> int:
        """Runs served from the dedupe cache instead of being re-evolved."""
        return len(self.cached_run_ids)

    @property
    def n_resumed(self) -> int:
        """Runs loaded back from the attached store instead of re-executed."""
        return len(self.resumed_run_ids)

    def status_for(self, run: RunSpec) -> str:
        """How ``run``'s artifact was obtained.

        ``"completed"`` (freshly executed), ``"resumed"`` (loaded from the
        store), ``"cached"`` (served from the dedupe cache) or
        ``"failed"``.  Unlike :meth:`rows` — whose ``status`` column keeps
        its historical completed/cached/failed vocabulary — this
        distinguishes resumed runs, which the red-team search's
        resubmission accounting relies on.
        """
        if run.run_id in self.failures:
            return "failed"
        if run.run_id in set(self.cached_run_ids):
            return "cached"
        if run.run_id in set(self.resumed_run_ids):
            return "resumed"
        return "completed"

    def artifact_for(self, run: RunSpec) -> RunArtifact:
        """The artifact of ``run``; a failed run raises :class:`CampaignRunError`
        carrying the worker's traceback."""
        try:
            return self.artifacts[run.run_id]
        except KeyError:
            error = self.failures.get(run.run_id)
            if error is not None:
                raise CampaignRunError(
                    f"campaign {self.spec.name!r} run {run.run_id} "
                    f"({dict(run.overrides)}) failed:\n{error}"
                ) from None
            raise KeyError(
                f"campaign {self.spec.name!r} has no run {run.run_id!r}"
            ) from None

    def ordered_artifacts(self) -> List[Optional[RunArtifact]]:
        """Artifacts in campaign (expansion) order; ``None`` where failed."""
        return [self.artifacts.get(run.run_id) for run in self.runs]

    def rows(self) -> List[Dict[str, Any]]:
        """One summary row per run, in campaign order.

        Cache-hit runs report ``status: "cached"`` (rather than blending
        into ``completed``) so dedupe behaviour is observable in
        ``--json`` output and the service endpoints.
        """
        cached = set(self.cached_run_ids)
        rows: List[Dict[str, Any]] = []
        for run in self.runs:
            row: Dict[str, Any] = {
                "run_id": run.run_id,
                "index": run.index,
                "seed": run.seed,
                "overrides": dict(run.overrides),
            }
            artifact = self.artifacts.get(run.run_id)
            if artifact is not None:
                row["status"] = "cached" if run.run_id in cached else "completed"
                best = artifact.results.get("overall_best_fitness")
                if best is not None:
                    row["overall_best_fitness"] = best
            else:
                row["status"] = "failed"
                row["error"] = self.failures.get(run.run_id, "unknown")
            rows.append(row)
        return rows

    def artifact(self) -> RunArtifact:
        """Campaign-level artifact: spec provenance plus per-run summary rows."""
        return RunArtifact(
            kind="campaign",
            config={"campaign": self.spec.to_dict()},
            results={
                "n_runs": len(self.runs),
                "n_completed": self.n_completed,
                "n_failed": self.n_failed,
                "n_resumed": self.n_resumed,
                "n_cached": self.n_cached,
                "executor": self.executor,
                "rows": self.rows(),
            },
            timing={"wall_time_s": self.wall_time_s},
            provenance={"store": self.store_root},
            raw=self,
        )


def run_campaign(
    spec: CampaignSpec,
    executor: Union[str, CampaignExecutor] = "serial",
    max_workers: Optional[int] = None,
    store: Union[CampaignStore, str, None] = None,
    resume: bool = True,
    cache: Union[DedupeCache, str, None] = None,
    progress: Optional[Callable[[RunSpec, str], None]] = None,
) -> CampaignResult:
    """Execute a campaign and return its collected results.

    Parameters
    ----------
    spec:
        The campaign to run.
    executor:
        Name of a registered executor
        (``serial``/``thread``/``process``/``distributed``) or an
        executor instance.
    max_workers:
        Worker cap for the concurrent executors (default: the machine's
        available CPUs, clamped to the number of pending runs).
    store:
        Optional :class:`CampaignStore` (or directory path) to persist
        results into.  With ``resume=True`` (the default), runs already
        recorded as completed are loaded from the store instead of being
        re-executed.
    cache:
        Optional :class:`DedupeCache` (or directory path).  Pending runs
        whose content signature is already published are served from the
        cache (``status: "cached"``) instead of being executed, and every
        freshly completed run is published back — so identical runs are
        deduped *across* campaigns and stores, not just on resume.
    progress:
        Optional callback invoked as ``progress(run, status)`` after each
        run finishes (status:
        ``completed``/``failed``/``resumed``/``cached``).
    """
    ensure_runners_loaded()
    if isinstance(executor, str):
        entry = EXECUTORS.get(executor)
        executor_obj: CampaignExecutor = entry() if isinstance(entry, type) else entry
    else:
        executor_obj = executor

    if store is not None and not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    if cache is not None and not isinstance(cache, DedupeCache):
        cache = DedupeCache(cache)

    runs = spec.expand()
    result = CampaignResult(
        spec=spec,
        executor=executor_obj.name,
        runs=runs,
        store_root=None if store is None else str(store.root),
    )

    # Telemetry only: wall_time_s never feeds results or signatures.
    # repro-lint: disable=RNG004
    started = time.perf_counter()
    pending = runs
    if store is not None:
        store.initialise(spec)
        if resume:
            index_status = {entry["run_id"]: entry["status"] for entry in store.index()}
            completed = store.completed_run_ids()
            pending = []
            for run in runs:
                if run.run_id in completed:
                    result.artifacts[run.run_id] = store.load_artifact(run.run_id)
                    # A run the store recorded as a dedupe hit stays
                    # visibly "cached" on resume instead of silently
                    # upgrading to "resumed".
                    if index_status.get(run.run_id) == "cached":
                        result.cached_run_ids.append(run.run_id)
                        status = "cached"
                    else:
                        result.resumed_run_ids.append(run.run_id)
                        status = "resumed"
                    if progress is not None:
                        progress(run, status)
                else:
                    pending.append(run)

    if cache is not None and pending:
        still_pending = []
        for run in pending:
            hit = cache.lookup(run.signature())
            if hit is not None:
                result.artifacts[run.run_id] = RunArtifact.from_dict(hit)
                result.cached_run_ids.append(run.run_id)
                if store is not None:
                    store.record(run, "cached", artifact=hit)
                if progress is not None:
                    progress(run, "cached")
            else:
                still_pending.append(run)
        pending = still_pending

    payloads = [run.to_json() for run in pending]
    for position, outcome_payload in executor_obj.execute(payloads, max_workers):
        run = pending[position]
        outcome = json.loads(outcome_payload)
        if outcome["status"] == "completed":
            artifact_dict = outcome["artifact"]
            result.artifacts[run.run_id] = RunArtifact.from_dict(artifact_dict)
            if store is not None:
                store.record(run, "completed", artifact=artifact_dict)
            if cache is not None:
                cache.publish(
                    run.signature(), artifact_dict, campaign=spec.name, run_id=run.run_id
                )
        else:
            result.failures[run.run_id] = outcome.get("error", "unknown error")
            if store is not None:
                store.record(run, "failed", error=result.failures[run.run_id])
        if progress is not None:
            progress(run, outcome["status"])
    # Telemetry only: wall_time_s never feeds results or signatures.
    # repro-lint: disable=RNG004
    result.wall_time_s = time.perf_counter() - started
    return result
