"""Parallel campaign runtime: declarative sweeps over the Session API.

The paper's headline claim is scalability — multiple processing arrays
evolving in parallel and surviving systematic fault sweeps — and the
experiments that back it are embarrassingly parallel scenario grids.
This package is the layer that actually runs them concurrently:

* **Campaigns** (:mod:`repro.runtime.campaign`) — a declarative
  :class:`CampaignSpec` expands parameter grids and zipped sweeps over
  the Session API configs into concrete :class:`RunSpec` runs, with
  deterministic per-run seed derivation from one campaign seed.
* **Runners** (:mod:`repro.runtime.runners`) — the string-keyed registry
  of per-run workloads (the default ``evolve`` runner drives one
  :class:`~repro.api.session.EvolutionSession`); experiments register
  their own runners the same way.
* **Executors** (:mod:`repro.runtime.executors`) — pluggable ``serial``,
  ``thread``, ``process`` and ``distributed`` execution backends (the
  last drives the :mod:`repro.service` work-queue fabric in-process).
  Every backend runs the same JSON-round-tripped payloads, so the
  executor choice can never change a campaign's results — only its
  wall-clock time.
* **Store** (:mod:`repro.runtime.store`) — a resumable on-disk
  :class:`CampaignStore` (JSONL run index plus one
  :class:`~repro.api.artifact.RunArtifact` file per run); rerunning a
  campaign skips runs that already completed.
* **Engine** (:mod:`repro.runtime.engine`) — :func:`run_campaign`, the
  one call that expands, dispatches, persists and aggregates.

The CLI exposes all of this as the ``repro-ehw campaign`` subcommand
(:mod:`repro.runtime.experiment`).
"""

from repro.runtime.campaign import CampaignSpec, RunSpec, derive_seed
from repro.runtime.engine import CampaignResult, CampaignRunError, run_campaign
from repro.runtime.executors import (
    EXECUTORS,
    DistributedExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.runtime.runners import RUNNERS, register_runner
from repro.runtime.store import CampaignStore, DedupeCache

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "derive_seed",
    "CampaignResult",
    "CampaignRunError",
    "run_campaign",
    "EXECUTORS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "RUNNERS",
    "register_runner",
    "CampaignStore",
    "DedupeCache",
]
