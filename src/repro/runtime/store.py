"""Resumable on-disk storage for campaign results.

A :class:`CampaignStore` is one directory per campaign::

    <root>/
      campaign.json        # the CampaignSpec + its content digest
      index.lock           # advisory lock serialising index appends
      runs.jsonl           # append-only run index, one JSON object per line
      runs/<run_id>.json   # one RunArtifact file per completed run

The JSONL index is append-only and last-write-wins per ``run_id``, so a
campaign that crashes mid-sweep (or is deliberately re-run with more
grid points) resumes by skipping every run already marked completed.
The per-run artifact files are exactly what
:meth:`~repro.api.artifact.RunArtifact.save` writes, so any downstream
tool that understands run artifacts understands a campaign store.

Two properties make the store safe to share between concurrent writers
(multiple local workers, or service workers reporting through one
server):

* artifact files are written atomically (temp file + ``os.replace``), so
  a killed worker can never leave a half-written artifact behind that a
  later resume would trust;
* index appends are serialised with an advisory ``fcntl`` file lock
  (where available), so two processes appending at once cannot
  interleave partial lines — the newline-healing in :meth:`record` and
  the corrupt-line tolerance in :meth:`index` remain as crash recovery,
  not as a substitute for mutual exclusion.

Index entries carry each run's content :meth:`~repro.runtime.campaign.RunSpec.signature`,
which is what the service layer's :class:`DedupeCache` keys on: a run
whose signature is already present (in this store or in the shared
cache) is recorded with ``status: "cached"`` and served from the stored
artifact instead of being re-evolved.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

try:  # pragma: no cover - import guard exercised implicitly per platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.api.artifact import RunArtifact
from repro.runtime.campaign import CampaignSpec, RunSpec

__all__ = ["CampaignStore", "DedupeCache"]

SPEC_FILE = "campaign.json"
INDEX_FILE = "runs.jsonl"
LOCK_FILE = "index.lock"
RUNS_DIR = "runs"

#: Index statuses that carry a loadable artifact (and are skipped on resume).
ARTIFACT_STATUSES = ("completed", "cached")


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader can only ever observe the old content or the complete new
    content — never a truncated file — even if the writer is killed
    mid-write.  The temp file lives in the destination directory so the
    replace stays on one filesystem.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@contextmanager
def _file_lock(lock_path: Path):
    """Advisory exclusive lock scoped to the ``with`` block.

    Uses ``fcntl.flock`` where available (POSIX); elsewhere the lock
    degrades to a no-op and the append-side newline healing remains the
    only interleaving defence.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    with open(lock_path, "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class CampaignStore:
    """Directory-backed, resumable result store for one campaign."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_FILE

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_FILE

    @property
    def runs_dir(self) -> Path:
        return self.root / RUNS_DIR

    def artifact_path(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.json"

    @property
    def fitness_cache_dir(self) -> Path:
        return self.root / "fitness_cache"

    def fitness_cache(self):
        """The store's persistent cross-run fitness cache.

        A :class:`~repro.backends.fitness_cache.PersistentFitnessCache`
        rooted inside this campaign store (``<root>/fitness_cache/``),
        sharing the store's durability conventions: append-only JSONL
        index, ``fcntl`` lock file, atomically replaced metadata.  Pass
        its root (or the instance) as the ``fitness_cache`` knob of an
        :class:`~repro.api.config.EvolutionConfig` so every run of the
        campaign — and every rerun against the same store — reuses
        already-computed fitnesses.
        """
        from repro.backends.fitness_cache import PersistentFitnessCache

        return PersistentFitnessCache(self.fitness_cache_dir)

    # ------------------------------------------------------------------ #
    def initialise(self, spec: CampaignSpec) -> None:
        """Create the store layout (or attach to an existing one).

        Attaching to a directory initialised for a *different* spec is an
        error: silently mixing two campaigns' runs in one index would make
        resume-by-run-id meaningless.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(exist_ok=True)
        digest = spec.digest()
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text(encoding="utf-8"))
            if existing.get("digest") != digest:
                raise ValueError(
                    f"store at {self.root} was initialised for campaign "
                    f"{existing.get('spec', {}).get('name')!r} with a different "
                    "spec; use a fresh directory (or delete the store) to run "
                    "a changed campaign"
                )
            return
        payload = {"digest": digest, "spec": spec.to_dict()}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        _atomic_write_text(self.spec_path, text)

    def load_spec(self) -> CampaignSpec:
        """The spec this store was initialised for."""
        payload = json.loads(self.spec_path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(payload["spec"])

    # ------------------------------------------------------------------ #
    def index(self) -> List[Dict[str, Any]]:
        """The run index, deduplicated by ``run_id`` (last write wins).

        Deduplication is what keeps retried runs honest: a failed run
        that is re-executed on resume appends a *second* JSONL line for
        the same ``run_id``, and counting both would over-report
        ``n_failed``/completed in :meth:`summary` (the raw file is
        append-only by design, so duplicates are expected there).

        Malformed lines are dropped with a warning instead of raising:
        the engine appends one line per finished run, so a campaign
        killed mid-write leaves a truncated line behind, and refusing to
        parse the file would make the store — whose whole purpose is
        crash resume — unresumable.  The interrupted run is simply not
        recorded, so the next resume re-executes it.
        """
        if not self.index_path.exists():
            return []
        by_run_id: Dict[str, Dict[str, Any]] = {}
        lines = self.index_path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"dropping corrupt line {lineno + 1} of campaign index "
                    f"{self.index_path} (interrupted write?); the affected "
                    "run will be re-executed on resume",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            by_run_id[entry["run_id"]] = entry
        return sorted(by_run_id.values(), key=lambda entry: entry["index"])

    def completed_run_ids(self) -> Set[str]:
        """Run ids recorded with a loadable artifact (the ones a rerun skips).

        Covers both computed (``completed``) and dedupe-served
        (``cached``) runs — each has its own artifact file either way.
        """
        return {
            entry["run_id"]
            for entry in self.index()
            if entry["status"] in ARTIFACT_STATUSES
        }

    def signature_index(self) -> Dict[str, Dict[str, Any]]:
        """Map of content signature -> index entry for artifact-bearing runs.

        The within-store half of the dedupe contract: a new run whose
        signature appears here can be served from the recorded artifact
        instead of being re-executed.
        """
        return {
            entry["signature"]: entry
            for entry in self.index()
            if entry["status"] in ARTIFACT_STATUSES and entry.get("signature")
        }

    # ------------------------------------------------------------------ #
    def record(
        self,
        run: RunSpec,
        status: str,
        artifact: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        source_run_id: Optional[str] = None,
    ) -> None:
        """Persist one run outcome: its artifact file plus an index line.

        ``status`` is ``completed`` (a freshly computed artifact),
        ``cached`` (an artifact served from the dedupe cache — recorded
        with its own artifact file so the store stays self-contained, and
        optionally the ``source_run_id`` it was copied from) or
        ``failed`` (with ``error``).
        """
        if status in ARTIFACT_STATUSES:
            if artifact is None:
                raise ValueError(f"a {status} run must provide its artifact")
            path = self.artifact_path(run.run_id)
            _atomic_write_text(
                path, json.dumps(artifact, indent=2, sort_keys=True) + "\n"
            )
        entry: Dict[str, Any] = {
            "run_id": run.run_id,
            "index": run.index,
            "status": status,
            "runner": run.runner,
            "seed": run.seed,
            "signature": run.signature(),
            "overrides": dict(run.overrides),
        }
        if status in ARTIFACT_STATUSES:
            entry["artifact"] = f"{RUNS_DIR}/{run.run_id}.json"
            results = (artifact or {}).get("results", {})
            if "overall_best_fitness" in results:
                entry["overall_best_fitness"] = results["overall_best_fitness"]
        if source_run_id is not None:
            entry["source_run_id"] = source_run_id
        if error is not None:
            entry["error"] = error
        self._append_index_line(json.dumps(entry, sort_keys=True))

    def _append_index_line(self, line: str) -> None:
        """Append one index line under the store's advisory lock.

        The lock serialises concurrent appenders (multiple workers
        sharing one store); the newline healing below remains as crash
        recovery — a writer killed mid-append leaves the index without a
        trailing newline, and the *next* append must not concatenate onto
        the orphan fragment (the fragment itself is then dropped by
        :meth:`index`'s parser).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with _file_lock(self.lock_path):
            needs_newline = False
            if self.index_path.exists():
                with self.index_path.open("rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    if handle.tell() > 0:
                        handle.seek(-1, os.SEEK_END)
                        needs_newline = handle.read(1) != b"\n"
            with self.index_path.open("a", encoding="utf-8") as handle:
                if needs_newline:
                    handle.write("\n")
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def load_artifact(self, run_id: str) -> RunArtifact:
        """Load one completed run's artifact back from disk."""
        return RunArtifact.from_json(self.artifact_path(run_id).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Aggregate view of the store: counts plus one row per run.

        Dedupe-served runs are reported distinctly (``n_cached``, rows
        with ``status: "cached"``) so cache behaviour is observable, but
        they carry real artifacts and count towards the fitness
        aggregates like any computed run.
        """
        rows = self.index()
        completed = [entry for entry in rows if entry["status"] == "completed"]
        cached = [entry for entry in rows if entry["status"] == "cached"]
        fitnesses = [
            entry["overall_best_fitness"]
            for entry in completed + cached
            if isinstance(entry.get("overall_best_fitness"), (int, float))
        ]
        summary: Dict[str, Any] = {
            "n_runs": len(rows),
            "n_completed": len(completed),
            "n_cached": len(cached),
            "n_failed": sum(1 for entry in rows if entry["status"] == "failed"),
            "rows": rows,
        }
        if fitnesses:
            summary["best_fitness"] = min(fitnesses)
            summary["mean_fitness"] = sum(fitnesses) / len(fitnesses)
        return summary


class DedupeCache:
    """Content-addressed artifact cache shared *across* campaign stores.

    The cache maps run signatures (see
    :meth:`~repro.runtime.campaign.RunSpec.signature`) to stored
    :class:`~repro.api.artifact.RunArtifact` payloads::

        <root>/
          signatures.jsonl         # append-only {signature, artifact, ...} index
          artifacts/<sig>.json     # one artifact file per unique signature

    A :class:`CampaignStore` dedupes within one campaign directory; the
    cache sits *in front of* stores and dedupes across submissions — the
    ``repro-ehw serve`` front-end consults it before enqueueing any run,
    and ``run_campaign(cache=...)`` does the same locally.  Publishing is
    idempotent and first-write-wins: determinism guarantees any two
    publishers of one signature hold byte-identical artifacts.

    Thread-safe within a process; cross-process appends are serialised
    with the same advisory ``fcntl`` lock the store index uses.
    """

    INDEX_FILE = "signatures.jsonl"
    LOCK_FILE = "signatures.lock"
    ARTIFACTS_DIR = "artifacts"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._loaded_size = -1

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_FILE

    @property
    def lock_path(self) -> Path:
        return self.root / self.LOCK_FILE

    @property
    def artifacts_dir(self) -> Path:
        return self.root / self.ARTIFACTS_DIR

    def artifact_path(self, signature: str) -> Path:
        return self.artifacts_dir / f"{signature}.json"

    # ------------------------------------------------------------------ #
    def _refresh_locked(self) -> None:
        """Re-read the index if another process has grown it."""
        if not self.index_path.exists():
            return
        size = self.index_path.stat().st_size
        if size == self._loaded_size:
            return
        entries: Dict[str, Dict[str, Any]] = {}
        for line in self.index_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A publisher killed mid-append; the artifact write happened
                # first (and atomically), so dropping the fragment only means
                # one signature goes unnoticed until republished.
                continue
            entries[entry["signature"]] = entry
        self._entries = entries
        self._loaded_size = size

    def signatures(self) -> Set[str]:
        """All signatures currently published."""
        with self._lock:
            self._refresh_locked()
            return set(self._entries)

    def __len__(self) -> int:
        return len(self.signatures())

    def __contains__(self, signature: object) -> bool:
        return signature in self.signatures()

    # ------------------------------------------------------------------ #
    def lookup(self, signature: str) -> Optional[Dict[str, Any]]:
        """The stored artifact dict for ``signature``, or ``None``."""
        with self._lock:
            self._refresh_locked()
            if signature not in self._entries:
                return None
        path = self.artifact_path(signature)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def publish(
        self,
        signature: str,
        artifact: Dict[str, Any],
        **meta: Any,
    ) -> bool:
        """Publish ``artifact`` under ``signature`` (first write wins).

        Returns ``True`` if the signature was newly added, ``False`` if
        it was already present (the existing artifact is kept — by the
        determinism contract the two are byte-identical anyway).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir.mkdir(exist_ok=True)
        with self._lock:
            with _file_lock(self.lock_path):
                self._refresh_locked()
                if signature in self._entries:
                    return False
                _atomic_write_text(
                    self.artifact_path(signature),
                    json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                )
                entry: Dict[str, Any] = {
                    "signature": signature,
                    "artifact": f"{self.ARTIFACTS_DIR}/{signature}.json",
                    **meta,
                }
                with self.index_path.open("a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                self._entries[signature] = entry
                self._loaded_size = self.index_path.stat().st_size
        return True
