"""Resumable on-disk storage for campaign results.

A :class:`CampaignStore` is one directory per campaign::

    <root>/
      campaign.json        # the CampaignSpec + its content digest
      runs.jsonl           # append-only run index, one JSON object per line
      runs/<run_id>.json   # one RunArtifact file per completed run

The JSONL index is append-only and last-write-wins per ``run_id``, so a
campaign that crashes mid-sweep (or is deliberately re-run with more
grid points) resumes by skipping every run already marked completed.
The per-run artifact files are exactly what
:meth:`~repro.api.artifact.RunArtifact.save` writes, so any downstream
tool that understands run artifacts understands a campaign store.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.api.artifact import RunArtifact
from repro.runtime.campaign import CampaignSpec, RunSpec

__all__ = ["CampaignStore"]

SPEC_FILE = "campaign.json"
INDEX_FILE = "runs.jsonl"
RUNS_DIR = "runs"


class CampaignStore:
    """Directory-backed, resumable result store for one campaign."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_FILE

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    @property
    def runs_dir(self) -> Path:
        return self.root / RUNS_DIR

    def artifact_path(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.json"

    # ------------------------------------------------------------------ #
    def initialise(self, spec: CampaignSpec) -> None:
        """Create the store layout (or attach to an existing one).

        Attaching to a directory initialised for a *different* spec is an
        error: silently mixing two campaigns' runs in one index would make
        resume-by-run-id meaningless.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(exist_ok=True)
        digest = spec.digest()
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text(encoding="utf-8"))
            if existing.get("digest") != digest:
                raise ValueError(
                    f"store at {self.root} was initialised for campaign "
                    f"{existing.get('spec', {}).get('name')!r} with a different "
                    "spec; use a fresh directory (or delete the store) to run "
                    "a changed campaign"
                )
            return
        payload = {"digest": digest, "spec": spec.to_dict()}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self.spec_path.write_text(text, encoding="utf-8")

    def load_spec(self) -> CampaignSpec:
        """The spec this store was initialised for."""
        payload = json.loads(self.spec_path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(payload["spec"])

    # ------------------------------------------------------------------ #
    def index(self) -> List[Dict[str, Any]]:
        """The run index, deduplicated by ``run_id`` (last write wins).

        Deduplication is what keeps retried runs honest: a failed run
        that is re-executed on resume appends a *second* JSONL line for
        the same ``run_id``, and counting both would over-report
        ``n_failed``/completed in :meth:`summary` (the raw file is
        append-only by design, so duplicates are expected there).

        Malformed lines are dropped with a warning instead of raising:
        the engine appends one line per finished run, so a campaign
        killed mid-write leaves a truncated line behind, and refusing to
        parse the file would make the store — whose whole purpose is
        crash resume — unresumable.  The interrupted run is simply not
        recorded, so the next resume re-executes it.
        """
        if not self.index_path.exists():
            return []
        by_run_id: Dict[str, Dict[str, Any]] = {}
        lines = self.index_path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"dropping corrupt line {lineno + 1} of campaign index "
                    f"{self.index_path} (interrupted write?); the affected "
                    "run will be re-executed on resume",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            by_run_id[entry["run_id"]] = entry
        return sorted(by_run_id.values(), key=lambda entry: entry["index"])

    def completed_run_ids(self) -> Set[str]:
        """Run ids recorded as completed (the ones a rerun skips)."""
        return {
            entry["run_id"] for entry in self.index() if entry["status"] == "completed"
        }

    # ------------------------------------------------------------------ #
    def record(
        self,
        run: RunSpec,
        status: str,
        artifact: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Persist one run outcome: its artifact file plus an index line."""
        if status == "completed":
            if artifact is None:
                raise ValueError("a completed run must provide its artifact")
            path = self.artifact_path(run.run_id)
            path.write_text(
                json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        entry: Dict[str, Any] = {
            "run_id": run.run_id,
            "index": run.index,
            "status": status,
            "runner": run.runner,
            "seed": run.seed,
            "overrides": dict(run.overrides),
        }
        if status == "completed":
            entry["artifact"] = f"{RUNS_DIR}/{run.run_id}.json"
            results = (artifact or {}).get("results", {})
            if "overall_best_fitness" in results:
                entry["overall_best_fitness"] = results["overall_best_fitness"]
        if error is not None:
            entry["error"] = error
        # A crash mid-append leaves the index without a trailing newline;
        # terminate the orphan fragment first so this entry starts on its
        # own line (the fragment is then dropped by index()'s parser)
        # instead of being concatenated into one corrupt record.
        needs_newline = False
        if self.index_path.exists():
            with self.index_path.open("rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    needs_newline = handle.read(1) != b"\n"
        with self.index_path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def load_artifact(self, run_id: str) -> RunArtifact:
        """Load one completed run's artifact back from disk."""
        return RunArtifact.from_json(self.artifact_path(run_id).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Aggregate view of the store: counts plus one row per run."""
        rows = self.index()
        completed = [entry for entry in rows if entry["status"] == "completed"]
        fitnesses = [
            entry["overall_best_fitness"]
            for entry in completed
            if isinstance(entry.get("overall_best_fitness"), (int, float))
        ]
        summary: Dict[str, Any] = {
            "n_runs": len(rows),
            "n_completed": len(completed),
            "n_failed": sum(1 for entry in rows if entry["status"] == "failed"),
            "rows": rows,
        }
        if fitnesses:
            summary["best_fitness"] = min(fitnesses)
            summary["mean_fitness"] = sum(fitnesses) / len(fitnesses)
        return summary
