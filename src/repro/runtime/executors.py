"""Pluggable campaign executors: serial, thread pool, process pool.

Every executor runs the same top-level worker function
(:func:`repro.runtime.engine.execute_run_payload`) on the same
JSON-serialised :class:`~repro.runtime.campaign.RunSpec` payloads — the
process pool ships them across the process boundary through the configs'
existing JSON round-trip, and the serial and thread backends feed the
identical payloads through the identical function in-process.  The
executor therefore only ever changes *where and when* runs execute,
never *what they compute*; the parity test in
``tests/runtime/test_executors.py`` holds all three to that contract.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Iterator, Optional, Sequence, Tuple

from repro.api.registry import Registry

__all__ = [
    "EXECUTORS",
    "register_executor",
    "available_cpus",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
]

#: Registry of campaign executors, keyed by name.
EXECUTORS = Registry("campaign executor")


def register_executor(name: str, obj=None, *, replace: bool = False):
    """Register an executor class; usable directly or as a decorator."""
    return EXECUTORS.register(name, obj, replace=replace)


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class CampaignExecutor:
    """Executor contract: dispatch payloads, yield results as they finish.

    Subclasses implement :meth:`execute`, taking the JSON run payloads in
    campaign order and yielding ``(position, result_payload)`` tuples in
    *completion* order; the engine reassociates positions with runs, so
    out-of-order completion is expected and harmless.
    """

    name = "?"

    def resolve_workers(self, n_payloads: int, max_workers: Optional[int]) -> int:
        """Clamp the worker count to the work available and the machine."""
        if max_workers is not None:
            if max_workers < 1:
                raise ValueError(f"max_workers must be >= 1, got {max_workers}")
            return min(max_workers, max(1, n_payloads))
        return min(available_cpus(), max(1, n_payloads))

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        raise NotImplementedError


def _run_payload(payload: str) -> str:
    # Imported lazily so the executors module does not cycle with the engine.
    from repro.runtime.engine import execute_run_payload

    return execute_run_payload(payload)


@register_executor("serial")
class SerialExecutor(CampaignExecutor):
    """Run every payload in this process, one after the other."""

    name = "serial"

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        for position, payload in enumerate(payloads):
            yield position, _run_payload(payload)


@register_executor("thread")
class ThreadExecutor(CampaignExecutor):
    """Run payloads on a thread pool.

    Python threads interleave rather than truly parallelise CPU-bound
    runs, but the backend is useful for I/O-heavy runners and as the
    cheapest concurrency smoke test of the executor contract.
    """

    name = "thread"

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        workers = self.resolve_workers(len(payloads), max_workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_payload, payload): position
                for position, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()


@register_executor("distributed")
class DistributedExecutor(CampaignExecutor):
    """Run payloads through the work-queue service fabric, zero deployment.

    The full distributed stack in one call: an ephemeral in-memory
    :class:`~repro.service.server.CampaignService` behind a loopback
    :class:`~repro.service.server.CampaignServer`, plus local worker
    processes running the standard ``repro-ehw worker`` loop
    (:func:`~repro.service.worker.worker_main`) against it over HTTP.
    Payloads flow submit → lease → ``execute_run_payload`` → complete,
    exactly as they would across machines, so ``--executor distributed``
    exercises (and is held to) the same determinism contract as the
    in-process backends.

    Robustness: workers fork *before* the server thread starts (their
    first requests queue in the accept backlog), crashed workers are
    handled by lease expiry, and if every worker is gone while runs
    remain the executor drains the queue in-process rather than hanging.
    """

    name = "distributed"

    def __init__(
        self,
        lease_seconds: float = 10.0,
        max_attempts: int = 3,
        poll_interval: float = 0.05,
        start_method: Optional[str] = None,
    ) -> None:
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.poll_interval = float(poll_interval)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    @staticmethod
    def _drain_inline(service, campaign_id: str) -> None:
        """No workers left: finish the queue in this process.

        Leases still held by dead workers expire on their deadline; the
        fallback then executes them through the same lease/complete
        protocol, so the campaign always terminates with every run in a
        terminal state.
        """
        import json
        import time as _time

        from repro.runtime.engine import execute_run_payload

        while not service.queue.is_drained(campaign_id):
            service.queue.poll_expired()
            grant = service.lease("inline-fallback")
            if grant is None:
                _time.sleep(0.02)
                continue
            outcome = json.loads(execute_run_payload(grant.payload))
            service.complete("inline-fallback", grant.lease_id, outcome)

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        import json
        import time as _time

        # Imported lazily: the service layer sits on top of the runtime,
        # so the runtime must not import it at module load.
        from repro.service.server import CampaignServer, CampaignService
        from repro.service.worker import worker_main

        if not payloads:
            return
        service = CampaignService(
            root=None,
            lease_seconds=self.lease_seconds,
            max_attempts=self.max_attempts,
        )
        campaign_id = service.submit_payloads("distributed", list(payloads))
        server = CampaignServer(service)  # binds the loopback socket now
        workers = self.resolve_workers(len(payloads), max_workers)
        context = multiprocessing.get_context(self.start_method)
        processes = [
            context.Process(
                target=worker_main,
                args=(server.url,),
                kwargs={
                    "worker_id": f"local-{index}",
                    "poll_interval": self.poll_interval,
                    "max_idle_polls": 10,
                    "max_errors": 3,
                },
                daemon=True,
            )
            for index in range(workers)
        ]
        emitted = set()

        def fresh() -> Iterator[Tuple[int, str]]:
            for run_id, outcome in service.queue.outcomes(campaign_id).items():
                if run_id not in emitted:
                    emitted.add(run_id)
                    yield int(run_id[1:]), json.dumps(outcome)

        try:
            for process in processes:
                process.start()
            server.start()
            while not service.queue.is_drained(campaign_id):
                if not any(process.is_alive() for process in processes):
                    self._drain_inline(service, campaign_id)
                    break
                service.queue.poll_expired()
                yield from fresh()
                _time.sleep(0.02)
            yield from fresh()
        finally:
            server.stop()
            for process in processes:
                process.join(timeout=2.0)
            for process in processes:
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=2.0)


@register_executor("process")
class ProcessExecutor(CampaignExecutor):
    """Run payloads on a multiprocessing pool (the scale-out backend).

    Run descriptions cross the process boundary as JSON payloads and come
    back as JSON artifacts, so nothing needs to be picklable beyond
    strings.  Workers are primed with the runner registry via an
    initializer, which keeps the ``spawn`` start method working; ``fork``
    is preferred where available because it avoids re-importing the
    library in every worker.
    """

    name = "process"

    def __init__(self, start_method: Optional[str] = None) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        from repro.runtime.engine import execute_run_payload, prime_worker

        workers = self.resolve_workers(len(payloads), max_workers)
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=prime_worker
        ) as pool:
            futures = {
                pool.submit(execute_run_payload, payload): position
                for position, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()
