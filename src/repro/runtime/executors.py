"""Pluggable campaign executors: serial, thread pool, process pool.

Every executor runs the same top-level worker function
(:func:`repro.runtime.engine.execute_run_payload`) on the same
JSON-serialised :class:`~repro.runtime.campaign.RunSpec` payloads — the
process pool ships them across the process boundary through the configs'
existing JSON round-trip, and the serial and thread backends feed the
identical payloads through the identical function in-process.  The
executor therefore only ever changes *where and when* runs execute,
never *what they compute*; the parity test in
``tests/runtime/test_executors.py`` holds all three to that contract.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Iterator, Optional, Sequence, Tuple

from repro.api.registry import Registry

__all__ = [
    "EXECUTORS",
    "register_executor",
    "available_cpus",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
]

#: Registry of campaign executors, keyed by name.
EXECUTORS = Registry("campaign executor")


def register_executor(name: str, obj=None, *, replace: bool = False):
    """Register an executor class; usable directly or as a decorator."""
    return EXECUTORS.register(name, obj, replace=replace)


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class CampaignExecutor:
    """Executor contract: dispatch payloads, yield results as they finish.

    Subclasses implement :meth:`execute`, taking the JSON run payloads in
    campaign order and yielding ``(position, result_payload)`` tuples in
    *completion* order; the engine reassociates positions with runs, so
    out-of-order completion is expected and harmless.
    """

    name = "?"

    def resolve_workers(self, n_payloads: int, max_workers: Optional[int]) -> int:
        """Clamp the worker count to the work available and the machine."""
        if max_workers is not None:
            if max_workers < 1:
                raise ValueError(f"max_workers must be >= 1, got {max_workers}")
            return min(max_workers, max(1, n_payloads))
        return min(available_cpus(), max(1, n_payloads))

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        raise NotImplementedError


def _run_payload(payload: str) -> str:
    # Imported lazily so the executors module does not cycle with the engine.
    from repro.runtime.engine import execute_run_payload

    return execute_run_payload(payload)


@register_executor("serial")
class SerialExecutor(CampaignExecutor):
    """Run every payload in this process, one after the other."""

    name = "serial"

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        for position, payload in enumerate(payloads):
            yield position, _run_payload(payload)


@register_executor("thread")
class ThreadExecutor(CampaignExecutor):
    """Run payloads on a thread pool.

    Python threads interleave rather than truly parallelise CPU-bound
    runs, but the backend is useful for I/O-heavy runners and as the
    cheapest concurrency smoke test of the executor contract.
    """

    name = "thread"

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        workers = self.resolve_workers(len(payloads), max_workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_payload, payload): position
                for position, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()


@register_executor("process")
class ProcessExecutor(CampaignExecutor):
    """Run payloads on a multiprocessing pool (the scale-out backend).

    Run descriptions cross the process boundary as JSON payloads and come
    back as JSON artifacts, so nothing needs to be picklable beyond
    strings.  Workers are primed with the runner registry via an
    initializer, which keeps the ``spawn`` start method working; ``fork``
    is preferred where available because it avoids re-importing the
    library in every worker.
    """

    name = "process"

    def __init__(self, start_method: Optional[str] = None) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def execute(
        self, payloads: Sequence[str], max_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        from repro.runtime.engine import execute_run_payload, prime_worker

        workers = self.resolve_workers(len(payloads), max_workers)
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=prime_worker
        ) as pool:
            futures = {
                pool.submit(execute_run_payload, payload): position
                for position, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()
