"""The ``repro-ehw campaign`` subcommand: declarative sweeps from the CLI.

A campaign can be given as a JSON spec file (``--spec``) or assembled
inline from axis flags::

    repro-ehw campaign \\
        --grid "evolution.mutation_rate=[1,3]" \\
        --grid "task.noise_level=[0.05,0.1]" \\
        --executor process --store out/campaign --json out/campaign.json

Axis values are parsed as JSON (falling back to comma-separated
strings), so grids can sweep numbers, strings or whole option objects.
The subcommand registers through the same experiment registry as the
paper-figure runners, so ``--json`` artifact output works unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.api.artifact import RunArtifact
from repro.api.config import EvolutionConfig, PlatformConfig, TaskSpec
from repro.api.experiment import ExperimentSpec, print_table, register_experiment
from repro.runtime.campaign import CampaignSpec
from repro.runtime.engine import run_campaign
from repro.runtime.executors import EXECUTORS

__all__ = ["build_spec_from_args"]


def _parse_values(text: str) -> List[Any]:
    """Parse an axis value list: JSON first, comma-separated strings second."""
    try:
        values = json.loads(text)
    except json.JSONDecodeError:
        return [item.strip() for item in text.split(",") if item.strip()]
    return values if isinstance(values, list) else [values]


def _parse_scalar(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _split_assignment(item: str, flag: str) -> Tuple[str, str]:
    key, sep, value = item.partition("=")
    if not sep or not key.strip():
        raise SystemExit(f"{flag} expects KEY=VALUE, got {item!r}")
    return key.strip(), value


def build_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign spec from ``--spec`` or the inline axis flags."""
    if args.spec_file:
        with open(args.spec_file, "r", encoding="utf-8") as handle:
            spec = CampaignSpec.from_json(handle.read())
        if args.grid or args.pair or args.set:
            raise SystemExit("--grid/--pair/--set cannot be combined with --spec")
        return spec

    grid: Dict[str, List[Any]] = {}
    for item in args.grid or []:
        key, value = _split_assignment(item, "--grid")
        grid[key] = _parse_values(value)
    paired: Dict[str, List[Any]] = {}
    for item in args.pair or []:
        key, value = _split_assignment(item, "--pair")
        paired[key] = _parse_values(value)
    params: Dict[str, Any] = {}
    for item in args.set or []:
        key, value = _split_assignment(item, "--set")
        params[key] = _parse_scalar(value)
    if not grid and not paired and args.repeats == 1:
        raise SystemExit(
            "a campaign needs at least one sweep axis (--grid/--pair), "
            "--repeats > 1, or a --spec file"
        )
    # --scenario pins the campaign's *base* fault timeline: it seeds the
    # scenario.* axes and is injected into every run's evolution config
    # (an evolution.scenario axis still overrides it per grid point).
    from repro.scenarios import resolve_scenario, scenario_from_cli_arg

    scenario = resolve_scenario(scenario_from_cli_arg(getattr(args, "scenario", None)))
    return CampaignSpec(
        name=args.name,
        runner=args.runner,
        platform=PlatformConfig(seed=args.seed, backend=args.backend),
        evolution=EvolutionConfig(
            n_generations=args.generations,
            seed=args.seed,
            population_batching=args.population_batching,
            fitness_cache=args.fitness_cache,
            racing=args.racing,
        ),
        scenario=scenario,
        task=TaskSpec(image_side=args.image_side, seed=args.seed),
        grid=grid,
        paired=paired,
        params=params,
        seed=args.campaign_seed if args.campaign_seed is not None else args.seed,
        repeats=args.repeats,
    )


# --------------------------------------------------------------------------- #
# CLI registration
# --------------------------------------------------------------------------- #
def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", dest="spec_file", metavar="FILE",
                        help="JSON CampaignSpec file (overrides the inline flags)")
    parser.add_argument("--grid", action="append", metavar="KEY=VALUES",
                        help="cartesian sweep axis, e.g. "
                             "--grid 'evolution.mutation_rate=[1,3,5]' (repeatable)")
    parser.add_argument("--pair", action="append", metavar="KEY=VALUES",
                        help="zipped sweep axis; all --pair axes advance together")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="constant runner parameter for every run")
    parser.add_argument("--name", default="cli-campaign", help="campaign name")
    parser.add_argument("--runner", default="evolve",
                        help="registered campaign runner (default: evolve)")
    parser.add_argument("--executor", default="serial", choices=sorted(EXECUTORS.names()),
                        help="execution backend")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker cap for the thread/process executors")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="resumable campaign store directory")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-execute runs already completed in the store")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed dedupe cache directory: runs "
                             "whose (resolved config, derived seed) signature "
                             "is already published are served from the cache "
                             "instead of re-evolved")
    parser.add_argument("--server", metavar="URL", default=None,
                        help="submit the campaign to a running `repro-ehw "
                             "serve` instance instead of executing locally "
                             "(streams per-run progress until done)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="replicates per grid point")
    parser.add_argument("--campaign-seed", type=int, default=None,
                        help="campaign seed (default: --seed)")
    parser.add_argument("--seed", type=int, default=2013, help="base config seed")
    parser.add_argument("--generations", type=int, default=100,
                        help="generation budget of the base evolution config")
    parser.add_argument("--image-side", type=int, default=32,
                        help="test image side of the base task config")
    from repro.backends import BACKENDS

    parser.add_argument(
        "--backend",
        default="reference",
        choices=sorted(BACKENDS.names()),
        help="array evaluation backend of the base platform config "
             "(bit-exact; sweepable as a 'platform.backend' axis too)",
    )
    parser.add_argument(
        "--population-batching",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="population-batched generation step of the base evolution "
             "config (bit-exact; sweepable as an "
             "'evolution.population_batching' axis too)",
    )
    parser.add_argument(
        "--fitness-cache",
        metavar="DIR",
        default=None,
        help="persistent cross-run fitness cache of the base evolution "
             "config (value-transparent; sweepable as an "
             "'evolution.fitness_cache' axis too)",
    )
    parser.add_argument(
        "--racing",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="racing early rejection of the base evolution config "
             "(exact bound, bit-identical trajectories; sweepable as an "
             "'evolution.racing' axis too)",
    )


def _run_remote(args: argparse.Namespace, spec: CampaignSpec) -> RunArtifact:
    """Submit the spec to a ``repro-ehw serve`` instance and stream progress."""
    import time

    from repro.service.client import ServiceClient
    from repro.service.protocol import RUN_CACHED, RUN_COMPLETED, RUN_FAILED

    if args.store:
        raise SystemExit(
            "--store cannot be combined with --server: the server manages "
            "its own per-campaign stores under its --root"
        )
    client = ServiceClient(args.server)
    # Telemetry only: artifact timing never feeds results or signatures.
    # repro-lint: disable=RNG004
    started = time.perf_counter()
    receipt = client.submit(spec.to_dict())
    campaign_id = receipt["campaign_id"]
    print(
        f"[campaign {spec.name}] submitted to {args.server} as {campaign_id} "
        f"({receipt['n_cached']} cached, {receipt['n_enqueued']} enqueued)",
        file=sys.stderr,
    )
    for event in client.iter_events(campaign_id, wait=5.0):
        print(
            f"[campaign {spec.name}] {event['run_id']}: {event['status']}",
            file=sys.stderr,
        )
    summary = client.summary(campaign_id)
    n_failed = sum(1 for row in summary["rows"] if row["status"] == RUN_FAILED)
    return RunArtifact(
        kind="campaign",
        config={"campaign": spec.to_dict()},
        results={
            "n_runs": summary["n_runs"],
            "n_completed": sum(
                1 for row in summary["rows"] if row["status"] == RUN_COMPLETED
            ),
            "n_failed": n_failed,
            "n_resumed": 0,
            "n_cached": sum(
                1 for row in summary["rows"] if row["status"] == RUN_CACHED
            ),
            "executor": f"server:{args.server}",
            "rows": summary["rows"],
        },
        # repro-lint: disable=RNG004 -- telemetry-only artifact timing
        timing={"wall_time_s": time.perf_counter() - started},
        provenance={
            "store": summary.get("store"),
            "server": args.server,
            "campaign_id": campaign_id,
        },
    )


def _run(args: argparse.Namespace) -> RunArtifact:
    spec = build_spec_from_args(args)
    if args.server:
        return _run_remote(args, spec)

    def progress(run, status):
        # Progress goes to stderr so `--json` stdout stays machine-readable.
        print(
            f"[campaign {spec.name}] {run.run_id} ({dict(run.overrides)}): {status}",
            file=sys.stderr,
        )

    result = run_campaign(
        spec,
        executor=args.executor,
        max_workers=args.workers,
        store=args.store,
        resume=not args.no_resume,
        cache=args.cache,
        progress=progress,
    )
    return result.artifact()


def _render(artifact: RunArtifact) -> None:
    results = artifact.results
    rows = [
        {
            "run_id": row["run_id"],
            "status": row["status"],
            "overrides": json.dumps(row.get("overrides", {}), sort_keys=True),
            "best_fitness": row.get("overall_best_fitness"),
        }
        for row in results["rows"]
    ]
    print_table(
        f"Campaign {artifact.config['campaign']['name']} "
        f"({results['executor']} executor, "
        f"{results['n_completed']}/{results['n_runs']} completed, "
        f"{results['n_resumed']} resumed, {results.get('n_cached', 0)} cached, "
        f"{results['n_failed']} failed)",
        rows,
        ["run_id", "status", "overrides", "best_fitness"],
    )
    if artifact.provenance.get("store"):
        print(f"\nstore: {artifact.provenance['store']}")


register_experiment(ExperimentSpec(
    name="campaign",
    help="run a declarative parameter-sweep campaign "
         "(serial/thread/process/distributed, or submit to a server)",
    configure=_configure,
    run=_run,
    render=_render,
))
