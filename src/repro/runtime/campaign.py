"""Campaign specifications: declarative sweeps expanded into concrete runs.

A :class:`CampaignSpec` describes a whole family of Session-API runs in
one JSON-serialisable object: the base configs, the parameter axes to
sweep (full cartesian ``grid`` axes and length-matched ``paired`` axes
that advance together), the runner that executes one run, and a single
campaign ``seed`` from which every run's missing seeds are derived
deterministically.  :meth:`CampaignSpec.expand` turns it into an ordered
list of :class:`RunSpec` objects — the exact same list on every machine
and every executor, which is what makes campaigns resumable and their
results independent of how they are scheduled.

Axis keys are dotted: ``"evolution.mutation_rate"``,
``"platform.n_arrays"``, ``"task.noise_level"``, ``"healing.tolerance"``
and ``"scenario.seu_rate"`` address fields of the corresponding config;
any other key (optionally prefixed ``"params."``) becomes a per-run
parameter passed through to the runner.

``scenario.*`` axes sweep fields of the campaign's base
:class:`~repro.scenarios.spec.FaultScenario`; the resolved scenario of
each run is injected into that run's evolution config, so runners see
it exactly where a hand-written ``EvolutionConfig.scenario`` would be.
(To sweep whole scenarios by name, use an ``"evolution.scenario"`` axis
with registered scenario names instead.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import (
    EvolutionConfig,
    PlatformConfig,
    SelfHealingConfig,
    TaskSpec,
)
from repro.scenarios import FaultScenario

__all__ = ["CampaignSpec", "RunSpec", "derive_seed"]

#: Axis prefixes addressing the Session-API configs (plus the scenario
#: spec, whose resolved value rides inside each run's evolution config).
_CONFIG_SECTIONS = {
    "platform": PlatformConfig,
    "evolution": EvolutionConfig,
    "task": TaskSpec,
    "healing": SelfHealingConfig,
    "scenario": FaultScenario,
}


def derive_seed(campaign_seed: int, *parts: Any) -> int:
    """Derive a deterministic 31-bit seed from the campaign seed and labels.

    Uses SHA-256 (never Python's salted ``hash``) so the same campaign
    expands to the same per-run seeds in every process, on every platform
    — the property the executor-parity guarantee rests on.
    """
    text = "|".join([str(int(campaign_seed)), *[str(part) for part in parts]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _freeze_mapping(value: Mapping[str, Any], label: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise TypeError(f"{label} must be a mapping, got {type(value)!r}")
    return MappingProxyType(dict(value))


def _split_axis_key(key: str) -> Tuple[Optional[str], str]:
    """Split an axis key into (config section, field) or (None, param name)."""
    if "." in key:
        section, _, rest = key.partition(".")
        if section in _CONFIG_SECTIONS:
            return section, rest
        if section == "params":
            return None, rest
    return None, key


def _validate_axis_key(key: str) -> None:
    section, name = _split_axis_key(key)
    if not name:
        raise ValueError(f"axis key {key!r} has an empty field name")
    if section is not None:
        known = {f.name for f in dataclasses.fields(_CONFIG_SECTIONS[section])}
        if name not in known:
            raise ValueError(
                f"axis {key!r} addresses unknown {section} config field {name!r}; "
                f"known fields: {', '.join(sorted(known))}"
            )


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved run of a campaign.

    Everything a worker needs is here — resolved configs, runner name,
    derived seed and runner parameters — and all of it round-trips
    through JSON, which is exactly how the process executor ships runs
    to its workers.
    """

    campaign: str
    index: int
    run_id: str
    runner: str
    seed: int
    platform: PlatformConfig
    evolution: EvolutionConfig
    task: TaskSpec
    healing: Optional[SelfHealingConfig] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_mapping(self.params, "params"))
        object.__setattr__(self, "overrides", _freeze_mapping(self.overrides, "overrides"))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "index": self.index,
            "run_id": self.run_id,
            "runner": self.runner,
            "seed": self.seed,
            "platform": self.platform.to_dict(),
            "evolution": self.evolution.to_dict(),
            "task": self.task.to_dict(),
            "healing": None if self.healing is None else self.healing.to_dict(),
            "params": dict(self.params),
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        healing = data.get("healing")
        return cls(
            campaign=data["campaign"],
            index=int(data["index"]),
            run_id=data["run_id"],
            runner=data["runner"],
            seed=int(data["seed"]),
            platform=PlatformConfig.from_dict(data["platform"]),
            evolution=EvolutionConfig.from_dict(data["evolution"]),
            task=TaskSpec.from_dict(data["task"]),
            healing=None if healing is None else SelfHealingConfig.from_dict(healing),
            params=dict(data.get("params") or {}),
            overrides=dict(data.get("overrides") or {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def signature(self) -> str:
        """Content-addressed dedupe key of this run.

        Derived from the *resolved* configs, runner, params and derived
        seed only — campaign name, run id, index and the override labels
        are excluded, so the same work submitted under two different
        campaign specs shares one signature (see
        :func:`repro.api.signature.run_signature`).
        """
        from repro.api.signature import run_signature

        return run_signature(
            runner=self.runner,
            seed=self.seed,
            platform=self.platform,
            evolution=self.evolution,
            task=self.task,
            healing=self.healing,
            params=self.params,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over Session-API configs.

    Parameters
    ----------
    name:
        Campaign identifier (recorded in every artifact and in the store).
    runner:
        Name of a registered campaign runner (see
        :mod:`repro.runtime.runners`); the default ``evolve`` runner
        drives one :class:`~repro.api.session.EvolutionSession` per run.
    platform, evolution, task, healing:
        Base configs every run starts from; axis values override fields.
    scenario:
        Optional base :class:`~repro.scenarios.spec.FaultScenario` every
        run evolves under.  ``scenario.*`` axes override its fields; the
        resolved scenario is injected into each run's evolution config
        (taking precedence over ``evolution.scenario``), so the fault
        timeline is sweepable like any other axis family.
    grid:
        ``{axis_key: [value, ...]}`` swept as a full cartesian product,
        in insertion order (first axis outermost).
    paired:
        ``{axis_key: [value, ...]}`` axes of equal length that advance
        together (a zipped sweep), forming one innermost composite axis.
    params:
        Constant runner parameters shared by every run.
    seed:
        Campaign seed.  Per-run seeds (and any config seeds left at
        ``None``) are derived from it with :func:`derive_seed`.
    repeats:
        Number of replicates per grid point (an extra innermost axis;
        the repeat index is part of each run's seed derivation).
    """

    name: str
    runner: str = "evolve"
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    task: TaskSpec = field(default_factory=TaskSpec)
    healing: Optional[SelfHealingConfig] = None
    scenario: Optional[FaultScenario] = None
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    paired: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be a non-empty string")
        if not self.runner:
            raise ValueError("campaign runner must be a non-empty name")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        grid = _freeze_mapping(self.grid, "grid")
        paired = _freeze_mapping(self.paired, "paired")
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "paired", paired)
        object.__setattr__(self, "params", _freeze_mapping(self.params, "params"))
        for key, values in itertools.chain(grid.items(), paired.items()):
            _validate_axis_key(key)
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise TypeError(f"axis {key!r} must map to a sequence of values")
            if not values:
                raise ValueError(f"axis {key!r} has no values")
        if paired:
            lengths = {len(values) for values in paired.values()}
            if len(lengths) > 1:
                raise ValueError(
                    "paired axes must all have the same length, got lengths "
                    f"{sorted(lengths)}"
                )
        overlap = set(grid) & set(paired)
        if overlap:
            raise ValueError(f"axes appear in both grid and paired: {sorted(overlap)}")

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def axes(self) -> List[Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]]:
        """The sweep axes: one per grid key plus one composite paired axis."""
        axes: List[Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]] = [
            ((key,), [(value,) for value in values]) for key, values in self.grid.items()
        ]
        if self.paired:
            keys = tuple(self.paired)
            axes.append((keys, list(zip(*self.paired.values()))))
        return axes

    def n_runs(self) -> int:
        """Number of runs this campaign expands into."""
        total = self.repeats
        for _, values in self.axes():
            total *= len(values)
        return total

    def expand(self) -> List[RunSpec]:
        """Expand the sweep into its ordered, fully seeded list of runs."""
        axes = self.axes()
        key_groups = [keys for keys, _ in axes]
        value_lists = [values for _, values in axes]
        runs: List[RunSpec] = []
        index = 0
        for combo in itertools.product(*value_lists):
            overrides: Dict[str, Any] = {}
            for keys, values in zip(key_groups, combo):
                overrides.update(zip(keys, values))
            for repeat in range(self.repeats):
                runs.append(self._resolve_run(index, overrides, repeat))
                index += 1
        return runs

    def _resolve_run(self, index: int, overrides: Mapping[str, Any], repeat: int) -> RunSpec:
        sections: Dict[str, Dict[str, Any]] = {name: {} for name in _CONFIG_SECTIONS}
        params: Dict[str, Any] = dict(self.params)
        recorded: Dict[str, Any] = {}
        for key, value in overrides.items():
            section, name = _split_axis_key(key)
            recorded[key] = value
            if section is None:
                params[name] = value
            else:
                sections[section][name] = value
        if self.repeats > 1:
            params["repeat"] = repeat
            recorded["repeat"] = repeat

        platform = (
            self.platform.replace(**sections["platform"])
            if sections["platform"]
            else self.platform
        )
        evolution = (
            self.evolution.replace(**sections["evolution"])
            if sections["evolution"]
            else self.evolution
        )
        task = self.task.replace(**sections["task"]) if sections["task"] else self.task
        healing = self.healing
        if sections["healing"]:
            if healing is None:
                raise ValueError(
                    "campaign sweeps a 'healing.*' axis but has no base healing config"
                )
            healing = healing.replace(**sections["healing"])
        scenario = self.scenario
        if sections["scenario"]:
            if scenario is None:
                raise ValueError(
                    "campaign sweeps a 'scenario.*' axis but has no base scenario config"
                )
            scenario = scenario.replace(**sections["scenario"])
        if scenario is not None and "scenario" not in sections["evolution"]:
            # The resolved timeline rides inside the run's evolution config,
            # which is where drivers (and the process-executor JSON round
            # trip) already look for it.  A swept evolution.scenario axis
            # wins for its grid point — the base scenario must not clobber
            # an override the expansion just applied.
            evolution = evolution.replace(scenario=scenario.to_dict())

        # Deterministic seeding: any config seed left unset is derived from
        # the campaign seed and the run index, so replicates and grid points
        # get distinct-but-reproducible random streams.
        if platform.seed is None:
            platform = platform.replace(seed=derive_seed(self.seed, index, "platform"))
        if evolution.seed is None:
            evolution = evolution.replace(seed=derive_seed(self.seed, index, "evolution"))
        if healing is not None and healing.seed is None:
            healing = healing.replace(seed=derive_seed(self.seed, index, "healing"))

        canonical = json.dumps(
            {"overrides": recorded, "repeat": repeat}, sort_keys=True, default=str
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
        return RunSpec(
            campaign=self.name,
            index=index,
            run_id=f"run-{index:04d}-{digest}",
            runner=self.runner,
            seed=derive_seed(self.seed, index),
            platform=platform,
            evolution=evolution,
            task=task,
            healing=healing,
            params=params,
            overrides=recorded,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "runner": self.runner,
            "platform": self.platform.to_dict(),
            "evolution": self.evolution.to_dict(),
            "task": self.task.to_dict(),
            "healing": None if self.healing is None else self.healing.to_dict(),
            "scenario": None if self.scenario is None else self.scenario.to_dict(),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "paired": {key: list(values) for key, values in self.paired.items()},
            "params": dict(self.params),
            "seed": self.seed,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"CampaignSpec does not accept field(s): {', '.join(sorted(unknown))}"
            )
        healing = data.get("healing")
        scenario = data.get("scenario")
        return cls(
            name=data["name"],
            runner=data.get("runner", "evolve"),
            platform=PlatformConfig.from_dict(data.get("platform") or {}),
            evolution=EvolutionConfig.from_dict(data.get("evolution") or {}),
            task=TaskSpec.from_dict(data.get("task") or {}),
            healing=None if healing is None else SelfHealingConfig.from_dict(healing),
            scenario=None if scenario is None else FaultScenario.from_dict(scenario),
            grid=dict(data.get("grid") or {}),
            paired=dict(data.get("paired") or {}),
            params=dict(data.get("params") or {}),
            seed=int(data.get("seed", 0)),
            repeats=int(data.get("repeats", 1)),
        )

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash used by the store to detect spec changes."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()
