"""Command-line interface for the reproduction experiments.

Installed as the ``repro-ehw`` console script, the CLI exposes the
experiment runners of :mod:`repro.experiments` so the paper's tables and
figures can be regenerated without writing Python::

    repro-ehw resources                    # §VI.A resource utilisation
    repro-ehw speedup                      # Figs. 12-13 (timing model)
    repro-ehw speedup --measured           # measured small-scale sweep
    repro-ehw new-ea --generations 150     # Figs. 14-15
    repro-ehw cascade-quality              # Figs. 16-17
    repro-ehw cascade-demo --noise 0.4     # Fig. 18
    repro-ehw imitation                    # Fig. 19
    repro-ehw tmr-recovery                 # Fig. 20
    repro-ehw fault-sweep                  # systematic fault analysis (extension)

Every subcommand accepts ``--seed`` and budget options so that quick looks
and full-fidelity runs use the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["main", "build_parser"]


def _print_table(title: str, rows: Iterable[Mapping], columns: Sequence[str]) -> None:
    rows = list(rows)
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {c: max(len(c), *(len(fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(fmt(row.get(c)).ljust(widths[c]) for c in columns))


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_resources(args: argparse.Namespace) -> int:
    from repro.experiments.resources_table import resource_utilisation_rows

    rows = resource_utilisation_rows(n_arrays=args.arrays)
    _print_table(f"Resource utilisation ({args.arrays} ACBs)", rows,
                 ["quantity", "paper", "measured"])
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.experiments.parallel_speedup import (
        evolution_time_sweep,
        measured_speedup_sweep,
        time_savings,
    )

    if args.measured:
        points = measured_speedup_sweep(
            image_side=args.image_side,
            n_generations=args.generations,
            seed=args.seed,
        )
        rows = [
            {"image": p.image_side, "k": p.mutation_rate, "arrays": p.n_arrays,
             "time_s": p.evolution_time_s, "pe_writes": p.n_reconfigurations}
            for p in points
        ]
        _print_table("Measured parallel-evolution sweep", rows,
                     ["image", "k", "arrays", "time_s", "pe_writes"])
        return 0

    points = evolution_time_sweep(n_generations=args.generations)
    rows = [
        {"image": f"{p.image_side}x{p.image_side}", "k": p.mutation_rate,
         "arrays": p.n_arrays, "time_s": p.evolution_time_s}
        for p in points
    ]
    _print_table(f"Figs. 12-13: evolution time, {args.generations} generations",
                 rows, ["image", "k", "arrays", "time_s"])
    _print_table("Time saving of 3 arrays vs 1", time_savings(points),
                 ["image_side", "mutation_rate", "single_array_s",
                  "three_arrays_s", "saving_s"])
    return 0


def _cmd_new_ea(args: argparse.Namespace) -> int:
    from repro.experiments.new_ea import new_ea_comparison

    points = new_ea_comparison(
        image_side=args.image_side,
        n_generations=args.generations,
        n_runs=args.runs,
        seed=args.seed,
    )
    rows = [
        {"strategy": p.strategy, "k": p.mutation_rate,
         "time_s": p.mean_platform_time_s, "fitness": p.mean_final_fitness,
         "pe_writes_per_gen": p.mean_reconfigurations_per_generation}
        for p in points
    ]
    _print_table("Figs. 14-15: classic vs two-level-mutation EA", rows,
                 ["strategy", "k", "time_s", "fitness", "pe_writes_per_gen"])
    return 0


def _cmd_cascade_quality(args: argparse.Namespace) -> int:
    from repro.experiments.cascade_quality import cascade_quality_comparison

    points = cascade_quality_comparison(
        image_side=args.image_side,
        noise_level=args.noise,
        n_generations=args.generations,
        n_runs=args.runs,
        seed=args.seed,
    )
    rows = [
        {"arrangement": p.arrangement, "stage": p.stage,
         "avg_fitness": p.average_fitness, "best_fitness": p.best_fitness}
        for p in points
    ]
    _print_table("Figs. 16-17: cascade arrangements, per-stage fitness", rows,
                 ["arrangement", "stage", "avg_fitness", "best_fitness"])
    return 0


def _cmd_cascade_demo(args: argparse.Namespace) -> int:
    from repro.experiments.cascade_demo import three_stage_cascade_demo

    result = three_stage_cascade_demo(
        image_side=args.image_side,
        noise_density=args.noise,
        n_generations=args.generations,
        seed=args.seed,
    )
    rows = [{"output": "noisy input", "aggregated_MAE": result.noisy_fitness}]
    rows += [
        {"output": f"cascade stage {i + 1}", "aggregated_MAE": fitness}
        for i, fitness in enumerate(result.stage_fitness)
    ]
    rows.append({"output": "median filter (3x3)", "aggregated_MAE": result.median_fitness})
    _print_table("Fig. 18: adapted 3-stage cascade vs median filter", rows,
                 ["output", "aggregated_MAE"])
    print(f"cascade beats median baseline: {result.cascade_beats_median}")
    return 0


def _cmd_imitation(args: argparse.Namespace) -> int:
    from repro.experiments.imitation_recovery import imitation_seed_comparison

    points = imitation_seed_comparison(
        image_side=args.image_side,
        initial_generations=args.generations,
        recovery_generations=args.generations,
        n_runs=args.runs,
        seed=args.seed,
    )
    rows = [
        {"seeding": p.seeding, "run": p.run, "fault_pe": str(p.fault_position),
         "pre_recovery": p.pre_recovery_fitness, "final": p.final_fitness}
        for p in points
    ]
    _print_table("Fig. 19: imitation recovery, inherited vs random seeding", rows,
                 ["seeding", "run", "fault_pe", "pre_recovery", "final"])
    return 0


def _cmd_tmr_recovery(args: argparse.Namespace) -> int:
    from repro.experiments.tmr_recovery import tmr_fault_recovery_trace

    result = tmr_fault_recovery_trace(
        image_side=args.image_side,
        initial_generations=args.generations,
        recovery_generations=args.generations,
        seed=args.seed,
    )
    rows = [
        {"generation": p.generation, "phase": p.phase,
         "faulty_fitness": p.faulty_array_fitness,
         "healthy_fitness": p.healthy_array_fitness}
        for p in result.trace
    ]
    _print_table("Fig. 20: TMR fault/recovery trace", rows,
                 ["generation", "phase", "faulty_fitness", "healthy_fitness"])
    print(f"fault detected: {result.fault_detected}; "
          f"class: {result.fault_class.value}; "
          f"final imitation fitness: {result.final_imitation_fitness:.0f}")
    return 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.fault_sweep import systematic_fault_analysis

    summaries = systematic_fault_analysis(
        image_side=args.image_side,
        n_generations=args.generations,
        seed=args.seed,
    )
    rows = [
        {"array": s.array_index, "benign": s.n_benign, "critical": s.n_critical,
         "max_degradation": s.max_degradation,
         "inactive_but_critical": s.structurally_inactive_but_critical}
        for s in summaries
    ]
    _print_table("Systematic PE-level fault sweep", rows,
                 ["array", "benign", "critical", "max_degradation",
                  "inactive_but_critical"])
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_common(parser: argparse.ArgumentParser, generations: int,
                image_side: int = 32, runs: int = 3) -> None:
    parser.add_argument("--seed", type=int, default=2013, help="random seed")
    parser.add_argument("--generations", type=int, default=generations,
                        help="generation budget")
    parser.add_argument("--image-side", type=int, default=image_side,
                        help="test image side in pixels")
    parser.add_argument("--runs", type=int, default=runs, help="repetitions")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ehw",
        description="Reproduce the evaluation of the IPPS 2013 multi-array "
                    "evolvable hardware system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("resources", help="resource utilisation (§VI.A)")
    p.add_argument("--arrays", type=int, default=3, help="number of ACBs")
    p.set_defaults(func=_cmd_resources)

    p = sub.add_parser("speedup", help="parallel-evolution speed-up (Figs. 12-13)")
    p.add_argument("--measured", action="store_true",
                   help="run real evolution instead of the timing model")
    _add_common(p, generations=100_000)
    p.set_defaults(func=_cmd_speedup)

    p = sub.add_parser("new-ea", help="classic vs two-level EA (Figs. 14-15)")
    _add_common(p, generations=150)
    p.set_defaults(func=_cmd_new_ea)

    p = sub.add_parser("cascade-quality", help="cascade arrangements (Figs. 16-17)")
    p.add_argument("--noise", type=float, default=0.3, help="salt-and-pepper density")
    _add_common(p, generations=60)
    p.set_defaults(func=_cmd_cascade_quality)

    p = sub.add_parser("cascade-demo", help="3-stage cascade vs median filter (Fig. 18)")
    p.add_argument("--noise", type=float, default=0.4, help="salt-and-pepper density")
    _add_common(p, generations=1200, image_side=64)
    p.set_defaults(func=_cmd_cascade_demo)

    p = sub.add_parser("imitation", help="imitation-recovery seeding comparison (Fig. 19)")
    _add_common(p, generations=120)
    p.set_defaults(func=_cmd_imitation)

    p = sub.add_parser("tmr-recovery", help="TMR fault/recovery trace (Fig. 20)")
    _add_common(p, generations=120)
    p.set_defaults(func=_cmd_tmr_recovery)

    p = sub.add_parser("fault-sweep", help="systematic PE-level fault sweep (extension)")
    _add_common(p, generations=150)
    p.set_defaults(func=_cmd_fault_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
