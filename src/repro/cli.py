"""Command-line interface for the reproduction experiments.

Installed as the ``repro-ehw`` console script, the CLI exposes the
experiment runners of :mod:`repro.experiments` so the paper's tables and
figures can be regenerated without writing Python::

    repro-ehw resources                    # §VI.A resource utilisation
    repro-ehw speedup                      # Figs. 12-13 (timing model)
    repro-ehw speedup --measured           # measured small-scale sweep
    repro-ehw new-ea --generations 150     # Figs. 14-15
    repro-ehw cascade-quality              # Figs. 16-17
    repro-ehw cascade-demo --noise 0.4     # Fig. 18
    repro-ehw imitation                    # Fig. 19
    repro-ehw tmr-recovery                 # Fig. 20
    repro-ehw fault-sweep                  # systematic fault analysis (extension)
    repro-ehw red-team --archive out/rt    # adversarial worst-case timeline search
    repro-ehw campaign --grid ...          # declarative parameter-sweep campaigns
    repro-ehw serve --root out/service     # campaign server (queue + dedupe cache)
    repro-ehw worker --server URL          # work-queue worker against a server
    repro-ehw lint src/repro --json        # determinism/concurrency contract linter
    repro-ehw cache verify out/fcache      # persistent fitness-cache maintenance

Subcommands are not hard-wired here: every experiment registers an
:class:`~repro.api.experiment.ExperimentSpec` in the ``experiment``
registry (see :mod:`repro.api.registry`), and this module builds one
subcommand per entry — so plugins that register an experiment appear in
the CLI automatically.

Every subcommand accepts ``--seed`` and budget options, plus ``--json``
to emit the run's :class:`~repro.api.artifact.RunArtifact` as
machine-readable JSON — to stdout with a bare ``--json``, or to a file
with ``--json PATH`` (the human-readable tables are still printed in the
file case) — and ``--scenario`` to run the experiment's evolutions under
a fault-scenario timeline (a built-in name from
:data:`repro.scenarios.SCENARIOS` or a ``FaultScenario`` JSON file;
experiments without an evolution phase, like ``resources``, accept and
ignore it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser from the experiment registry."""
    # Importing the experiments package (and the campaign runtime command)
    # registers every ExperimentSpec.
    import repro.experiments  # noqa: F401
    import repro.lint.experiment  # noqa: F401
    import repro.runtime.cache_experiment  # noqa: F401
    import repro.runtime.experiment  # noqa: F401
    import repro.service.experiment  # noqa: F401
    from repro.api.registry import EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="repro-ehw",
        description="Reproduce the evaluation of the IPPS 2013 multi-array "
                    "evolvable hardware system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in EXPERIMENTS.names():
        spec = EXPERIMENTS.get(name)
        p = sub.add_parser(name, help=spec.help)
        spec.configure(p)
        p.add_argument(
            "--json",
            nargs="?",
            const="-",
            default=None,
            metavar="FILE",
            help="emit the run artifact as JSON (to stdout with no value, "
                 "or to FILE)",
        )
        p.add_argument(
            "--scenario",
            default=None,
            metavar="NAME|FILE",
            help="fault-scenario timeline for the experiment's evolutions: "
                 "a built-in scenario name (single-seu, seu-storm, "
                 "creeping-permanent, scrub-race, mixed-burst, quiet, or a "
                 "frozen redteam-* worst case) or a FaultScenario JSON "
                 "file; ignored by experiments without an evolution phase",
        )
        p.set_defaults(spec=spec)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    artifact = args.spec.run(args)
    # Experiments with a pass/fail contract (the lint subcommand) report it
    # through results["exit_code"]; everything else defaults to success.
    results = artifact.results if isinstance(artifact.results, dict) else {}
    exit_code = int(results.get("exit_code", 0))
    if args.json == "-":
        print(artifact.to_json())
        return exit_code
    args.spec.render(artifact)
    if args.json:
        artifact.save(args.json)
        print(f"\nartifact written to {args.json}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
