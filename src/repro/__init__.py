"""repro — reproduction of the IPPS 2013 multi-array evolvable hardware system.

This library reproduces, in pure Python, the system described in
*"A Novel FPGA-based Evolvable Hardware System Based on Multiple Processing
Arrays"* (Gallego et al., IPPS/IPDPS Workshops 2013): a scalable set of
evolvable systolic processing arrays for window-based image filtering,
evolved intrinsically through (simulated) Dynamic Partial Reconfiguration,
with parallel/cascaded/bypass/independent operation modes, a new
two-level-mutation evolutionary algorithm, and self-healing strategies that
combine scrubbing, TMR voting and evolution by imitation.

Quick start
-----------
The unified Session API (:mod:`repro.api`) is the recommended entry point:

>>> from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig, TaskSpec
>>> session = EvolutionSession(
...     PlatformConfig(n_arrays=3, seed=1),
...     EvolutionConfig(strategy="parallel", n_generations=50, seed=1),
... )
>>> artifact = session.evolve(
...     TaskSpec(task="salt_pepper_denoise", image_side=32, seed=1, noise_level=0.1)
... )
>>> artifact.results["overall_best_fitness"] < float("inf")
True

The class-based entry points remain fully supported:

>>> from repro import EvolvableHardwarePlatform, ParallelEvolution
>>> from repro.imaging import make_training_pair
>>> pair = make_training_pair("salt_pepper_denoise", size=32, seed=1, noise_level=0.1)
>>> platform = EvolvableHardwarePlatform(n_arrays=3, seed=1)
>>> driver = ParallelEvolution(platform, n_offspring=9, mutation_rate=3, rng=1)
>>> result = driver.run(pair.training, pair.reference, n_generations=50)
>>> result.overall_best_fitness() < float("inf")
True

The package is organised as one sub-package per subsystem; see
``docs/architecture.md`` for the full inventory and ``docs/paper_map.md``
for the per-experiment index.
"""

from repro import analysis, api, backends, experiments, imaging, runtime
from repro.api import (
    EvolutionConfig,
    EvolutionSession,
    PlatformConfig,
    RunArtifact,
    SelfHealingConfig,
    TaskSpec,
)
from repro.array import ArrayGeometry, Genotype, GenotypeSpec, SystolicArray
from repro.core import (
    ArrayControlBlock,
    CascadeFitnessMode,
    CascadeSchedule,
    CascadedEvolution,
    CascadedSelfHealing,
    EvolvableHardwarePlatform,
    FitnessSource,
    FitnessVoter,
    ImitationEvolution,
    IndependentEvolution,
    ParallelEvolution,
    PixelVoter,
    PlatformEvolutionResult,
    ProcessingMode,
    TmrSelfHealing,
    TwoLevelMutationEvolution,
)
from repro.runtime import CampaignSpec, CampaignStore, run_campaign
from repro.timing import EvolutionTimingModel

__version__ = "1.9.0"

__all__ = [
    "analysis",
    "api",
    "backends",
    "experiments",
    "imaging",
    "runtime",
    "CampaignSpec",
    "CampaignStore",
    "run_campaign",
    "EvolutionConfig",
    "EvolutionSession",
    "PlatformConfig",
    "RunArtifact",
    "SelfHealingConfig",
    "TaskSpec",
    "ArrayGeometry",
    "Genotype",
    "GenotypeSpec",
    "SystolicArray",
    "ArrayControlBlock",
    "CascadeFitnessMode",
    "CascadeSchedule",
    "CascadedEvolution",
    "CascadedSelfHealing",
    "EvolvableHardwarePlatform",
    "FitnessSource",
    "FitnessVoter",
    "ImitationEvolution",
    "IndependentEvolution",
    "ParallelEvolution",
    "PixelVoter",
    "PlatformEvolutionResult",
    "ProcessingMode",
    "TmrSelfHealing",
    "TwoLevelMutationEvolution",
    "EvolutionTimingModel",
    "__version__",
]
