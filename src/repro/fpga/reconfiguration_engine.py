"""The shared reconfiguration engine.

The platform has exactly one reconfiguration engine (presented by the
authors in a separate paper, [14]); it reads partial bitstreams from the
external memory or from the configuration memory itself and supports fast
reconfiguration and relocation.  Because it is shared, candidate placement
is inherently serial even when evaluation is parallel — "the only process
that can be parallelized is the evaluation of the solution circuits, due to
the fact that there is just one reconfiguration engine in the system"
(§VI.B, Fig. 11) — which is why the parallel-evolution speed-up saturates.

Timing: each PE reconfiguration performs a readback of the frames that
share the PE's region (the PE "uses less than a clock region, [so]
configuration data allocated in the position of the PE has to be read back
before reconfiguration"), merges in the new PE content and writes the
frames back.  With the default Virtex-5 geometry and the ICAP at 100 MHz
this comes to the paper's 67.53 µs per PE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.fpga.bitstream import DUMMY_FAULT_GENE, BitstreamLibrary
from repro.fpga.fabric import FpgaFabric, RegionAddress
from repro.fpga.icap import IcapModel

__all__ = ["ReconfigurationStats", "ReconfigurationEngine"]


@dataclass
class ReconfigurationStats:
    """Cumulative statistics of the reconfiguration engine."""

    n_pe_reconfigurations: int = 0
    n_scrub_rewrites: int = 0
    n_readbacks: int = 0
    busy_time_s: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.n_pe_reconfigurations = 0
        self.n_scrub_rewrites = 0
        self.n_readbacks = 0
        self.busy_time_s = 0.0


class ReconfigurationEngine:
    """Single shared DPR engine with readback / relocation / writeback.

    Parameters
    ----------
    fabric:
        The configuration-memory model the engine operates on.
    icap:
        ICAP timing model (defaults to the nominal 100 MHz port).
    library:
        Bitstream library; defaults to the fabric's own library.
    """

    def __init__(
        self,
        fabric: FpgaFabric,
        icap: IcapModel = IcapModel(),
        library: Optional[BitstreamLibrary] = None,
    ) -> None:
        self.fabric = fabric
        self.icap = icap
        self.library = library if library is not None else fabric.library
        self.stats = ReconfigurationStats()

    # ------------------------------------------------------------------ #
    # Timing primitives
    # ------------------------------------------------------------------ #
    @property
    def pe_words(self) -> int:
        """Configuration words covering one PE region."""
        return self.library.pe_words

    @property
    def pe_reconfiguration_time_s(self) -> float:
        """Time to reconfigure one PE (readback + writeback + overhead).

        With the default geometry this evaluates to 67.53 µs, the figure
        reported in §VI.A.
        """
        # Readback of the PE frames, then writeback of the merged frames.
        return self.icap.transaction_time_s(2 * self.pe_words)

    def readback_time_s(self) -> float:
        """Time for a readback-only transaction over one PE region."""
        return self.icap.transaction_time_s(self.pe_words)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def reconfigure_pe(self, address: RegionAddress, function_gene: int) -> float:
        """Place the bitstream for ``function_gene`` at ``address``.

        Returns the time the engine was busy.  ``function_gene`` may be
        :data:`~repro.fpga.bitstream.DUMMY_FAULT_GENE` (fault injection).
        """
        bitstream = self.library.get(int(function_gene))
        self.fabric.write_region(address, bitstream)
        elapsed = self.pe_reconfiguration_time_s
        self.stats.n_pe_reconfigurations += 1
        self.stats.busy_time_s += elapsed
        return elapsed

    def reconfigure_many(
        self, placements: Iterable[Tuple[RegionAddress, int]]
    ) -> float:
        """Serially place several PE bitstreams; returns total busy time.

        The engine is a single shared resource, so the cost is strictly the
        sum of the individual reconfigurations — there is no overlap.
        """
        total = 0.0
        for address, function_gene in placements:
            total += self.reconfigure_pe(address, function_gene)
        return total

    def configure_array(self, array_index: int, function_genes) -> float:
        """Write a full array's worth of function genes (initial configuration).

        ``function_genes`` is a ``(rows, cols)`` array-like of gene values.
        Returns the engine busy time.
        """
        geometry = self.fabric.geometry
        placements: List[Tuple[RegionAddress, int]] = []
        for row in range(geometry.rows):
            for col in range(geometry.cols):
                placements.append(
                    (RegionAddress(array_index, row, col), int(function_genes[row][col]))
                )
        return self.reconfigure_many(placements)

    def relocate(self, source: RegionAddress, destination: RegionAddress) -> float:
        """Copy a region's configuration to another compatible region.

        Models the engine's readback / relocation / writeback feature used
        to "insert, copy or move HW blocks within the reconfigurable
        fabric".  Returns the busy time (one readback plus one writeback).
        """
        state = self.fabric.region(source)
        bitstream = self.library.get(state.configured_gene)
        self.fabric.write_region(destination, bitstream)
        elapsed = self.icap.transaction_time_s(2 * self.pe_words)
        self.stats.n_pe_reconfigurations += 1
        self.stats.n_readbacks += 1
        self.stats.busy_time_s += elapsed
        return elapsed

    def inject_dummy_pe(self, address: RegionAddress) -> float:
        """Fault-injection helper: place the dummy (garbage-output) PE bitstream."""
        return self.reconfigure_pe(address, DUMMY_FAULT_GENE)

    def scrub_rewrite(self, address: RegionAddress) -> float:
        """Rewrite the golden bitstream of a region (used by the scrubber).

        Returns the busy time (readback for verification happens in the
        scrubber; the rewrite itself is a write-only transaction).
        """
        state = self.fabric.region(address)
        golden = self.library.get(state.configured_gene)
        self.fabric.write_region(address, golden)
        elapsed = self.icap.transaction_time_s(self.pe_words)
        self.stats.n_scrub_rewrites += 1
        self.stats.busy_time_s += elapsed
        return elapsed

    def readback(self, address: RegionAddress) -> float:
        """Account a verification readback of one region; returns busy time."""
        self.fabric.readback_region(address)
        elapsed = self.readback_time_s()
        self.stats.n_readbacks += 1
        self.stats.busy_time_s += elapsed
        return elapsed
