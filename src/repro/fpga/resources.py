"""Resource-utilisation model (paper §VI.A).

The paper reports the logic cost of the scalable architecture on a Xilinx
Virtex-5 LX110T:

* the static control logic "in charge of addressing and managing the ACB
  registers consumes 733 slices, requiring 1365 FFs and 1817 LUTs";
* "every ACB requires 754 slices, with 1642 FFs and 1528 LUTs";
* each PE occupies 2 CLB columns x 5 CLB rows (a quarter of a clock
  region), so a 4x4 array occupies 8 CLB columns of a clock region,
  160 CLBs in total;
* the reconfiguration time is 67.53 µs per PE with the ICAP at 100 MHz.

This module reproduces those numbers and scales them with the number of
ACBs, producing the "resource utilisation" rows of the evaluation section
plus derived device-occupancy percentages, so that a user can ask how many
arrays fit on the device before running out of slices or clock regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.array.systolic_array import ArrayGeometry

__all__ = ["DeviceModel", "ResourceModel", "ResourceReport", "VIRTEX5_LX110T"]


@dataclass(frozen=True)
class DeviceModel:
    """Capacity of the target FPGA device."""

    name: str
    n_slices: int
    n_luts: int
    n_ffs: int
    n_clock_regions: int
    clb_columns_per_region: int

    def __post_init__(self) -> None:
        if min(self.n_slices, self.n_luts, self.n_ffs, self.n_clock_regions) <= 0:
            raise ValueError("device capacities must be positive")


#: The paper's device: a medium-size Xilinx Virtex-5 LX110T.
VIRTEX5_LX110T = DeviceModel(
    name="Virtex-5 LX110T",
    n_slices=17_280,
    n_luts=69_120,
    n_ffs=69_120,
    n_clock_regions=16,
    clb_columns_per_region=58,
)


@dataclass(frozen=True)
class ResourceReport:
    """Aggregate resource usage of an EHW platform instance."""

    n_arrays: int
    static_slices: int
    static_ffs: int
    static_luts: int
    acb_slices: int
    acb_ffs: int
    acb_luts: int
    array_clbs: int
    pe_reconfiguration_time_us: float
    device: DeviceModel

    # ------------------------------------------------------------------ #
    @property
    def total_slices(self) -> int:
        """Static + all ACB slices."""
        return self.static_slices + self.n_arrays * self.acb_slices

    @property
    def total_ffs(self) -> int:
        """Static + all ACB flip-flops."""
        return self.static_ffs + self.n_arrays * self.acb_ffs

    @property
    def total_luts(self) -> int:
        """Static + all ACB LUTs."""
        return self.static_luts + self.n_arrays * self.acb_luts

    @property
    def total_array_clbs(self) -> int:
        """CLBs occupied by the reconfigurable arrays themselves."""
        return self.n_arrays * self.array_clbs

    @property
    def slice_utilisation(self) -> float:
        """Fraction of device slices used by static + ACB control logic."""
        return self.total_slices / self.device.n_slices

    @property
    def clock_region_utilisation(self) -> float:
        """Fraction of clock regions used by the stacked arrays (one per ACB)."""
        return self.n_arrays / self.device.n_clock_regions

    def full_array_reconfiguration_time_us(self, n_pes: int) -> float:
        """Time to reconfigure every PE of one array, in microseconds."""
        return self.pe_reconfiguration_time_us * n_pes

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows equivalent to the §VI.A resource summary (for report printing)."""
        return [
            {
                "component": "static control (ACB addressing/management)",
                "slices": self.static_slices,
                "ffs": self.static_ffs,
                "luts": self.static_luts,
            },
            {
                "component": "one ACB",
                "slices": self.acb_slices,
                "ffs": self.acb_ffs,
                "luts": self.acb_luts,
            },
            {
                "component": f"platform total ({self.n_arrays} ACBs)",
                "slices": self.total_slices,
                "ffs": self.total_ffs,
                "luts": self.total_luts,
            },
        ]


class ResourceModel:
    """Scalable resource model following the paper's per-module costs.

    Parameters
    ----------
    geometry:
        Array geometry (defaults to the paper's 4x4, 2x5-CLB PEs).
    device:
        Target device (defaults to the Virtex-5 LX110T).
    static_slices, static_ffs, static_luts:
        Cost of the static control logic (defaults: paper values).
    acb_slices, acb_ffs, acb_luts:
        Cost of one Array Control Block (defaults: paper values).
    pe_reconfiguration_time_us:
        Per-PE reconfiguration latency (default: paper's 67.53 µs).
    """

    def __init__(
        self,
        geometry: ArrayGeometry = ArrayGeometry(),
        device: DeviceModel = VIRTEX5_LX110T,
        static_slices: int = 733,
        static_ffs: int = 1365,
        static_luts: int = 1817,
        acb_slices: int = 754,
        acb_ffs: int = 1642,
        acb_luts: int = 1528,
        pe_reconfiguration_time_us: float = 67.53,
    ) -> None:
        self.geometry = geometry
        self.device = device
        self.static_slices = static_slices
        self.static_ffs = static_ffs
        self.static_luts = static_luts
        self.acb_slices = acb_slices
        self.acb_ffs = acb_ffs
        self.acb_luts = acb_luts
        self.pe_reconfiguration_time_us = pe_reconfiguration_time_us

    def report(self, n_arrays: int) -> ResourceReport:
        """Resource report for a platform with ``n_arrays`` ACBs."""
        if n_arrays < 1:
            raise ValueError(f"n_arrays must be >= 1, got {n_arrays}")
        return ResourceReport(
            n_arrays=n_arrays,
            static_slices=self.static_slices,
            static_ffs=self.static_ffs,
            static_luts=self.static_luts,
            acb_slices=self.acb_slices,
            acb_ffs=self.acb_ffs,
            acb_luts=self.acb_luts,
            array_clbs=self.geometry.total_clbs,
            pe_reconfiguration_time_us=self.pe_reconfiguration_time_us,
            device=self.device,
        )

    def max_arrays(self) -> int:
        """Largest number of ACBs that fits the device.

        Limited by whichever runs out first: slices for control logic or
        clock regions for the vertically stacked arrays.
        """
        by_slices = (self.device.n_slices - self.static_slices) // self.acb_slices
        by_regions = self.device.n_clock_regions
        return max(0, min(by_slices, by_regions))
