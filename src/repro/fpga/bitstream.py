"""Partial bitstream (PBS) model and library.

In the real platform the 16 PE configurations are presynthesised partial
bitstreams stored in the external DDR2 memory; the reconfiguration engine
copies (and relocates) them into the configuration memory region of the
target PE.  Here a PBS is a deterministic pseudo-random block of
configuration words derived from the function gene, which gives the
fabric/scrubbing layer something concrete to verify against: a readback
that does not match the expected PBS content indicates configuration
corruption (an SEU), exactly the check a scrubber performs.

A special *dummy fault* bitstream is also provided — the paper injects
faults "reconfiguring dynamically the desired position of the array with a
modified bitstream corresponding to a dummy PE, which generates a random
value in its output" (§VI.D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.array.pe_library import N_FUNCTIONS, function_name
from repro.fpga.icap import FRAME_WORDS, FRAMES_PER_CLB_COLUMN

__all__ = ["PartialBitstream", "BitstreamLibrary", "DUMMY_FAULT_GENE"]

#: Pseudo-gene identifying the dummy (fault-injection) bitstream.
DUMMY_FAULT_GENE = -1


@dataclass(frozen=True)
class PartialBitstream:
    """A presynthesised partial bitstream for one PE function.

    Attributes
    ----------
    function_gene:
        The PE function this bitstream implements (``0..15``), or
        :data:`DUMMY_FAULT_GENE` for the fault-injection dummy PE.
    words:
        Configuration payload as a read-only uint32 array.
    n_frames:
        Number of configuration frames covered.
    """

    function_gene: int
    words: np.ndarray = field(repr=False)
    n_frames: int

    def __post_init__(self) -> None:
        if self.words.dtype != np.uint32:
            raise TypeError("bitstream words must be uint32")
        if self.words.ndim != 1:
            raise ValueError("bitstream words must be a 1-D array")
        if len(self.words) != self.n_frames * FRAME_WORDS:
            raise ValueError(
                f"bitstream of {self.n_frames} frames must contain "
                f"{self.n_frames * FRAME_WORDS} words, got {len(self.words)}"
            )
        self.words.setflags(write=False)

    @property
    def n_words(self) -> int:
        """Number of 32-bit configuration words."""
        return int(len(self.words))

    @property
    def size_bytes(self) -> int:
        """Payload size in bytes."""
        return self.n_words * 4

    @property
    def name(self) -> str:
        """Human-readable name of the implemented function."""
        if self.function_gene == DUMMY_FAULT_GENE:
            return "DUMMY_FAULT"
        return function_name(self.function_gene)


class BitstreamLibrary:
    """The library of presynthesised PE bitstreams kept in external memory.

    Parameters
    ----------
    pe_clb_columns:
        CLB columns occupied by one PE region (paper: 2), which together
        with the Virtex-5 frame geometry determines the PBS size.
    seed:
        Seed for the deterministic pseudo-content of each bitstream.
    """

    def __init__(self, pe_clb_columns: int = 2, seed: int = 2013) -> None:
        if pe_clb_columns < 1:
            raise ValueError("pe_clb_columns must be >= 1")
        self.pe_clb_columns = pe_clb_columns
        self.n_frames_per_pe = pe_clb_columns * FRAMES_PER_CLB_COLUMN
        self._seed = seed
        self._cache: Dict[int, PartialBitstream] = {}

    @property
    def pe_words(self) -> int:
        """Configuration words per PE bitstream."""
        return self.n_frames_per_pe * FRAME_WORDS

    def _generate(self, function_gene: int) -> PartialBitstream:
        rng = np.random.default_rng((self._seed, function_gene & 0xFFFF))
        words = rng.integers(0, 2**32, size=self.pe_words, dtype=np.uint32)
        return PartialBitstream(
            function_gene=function_gene, words=words, n_frames=self.n_frames_per_pe
        )

    def get(self, function_gene: int) -> PartialBitstream:
        """Return the PBS implementing ``function_gene`` (cached).

        ``function_gene`` may also be :data:`DUMMY_FAULT_GENE` to obtain the
        fault-injection dummy bitstream.
        """
        function_gene = int(function_gene)
        if function_gene != DUMMY_FAULT_GENE and not 0 <= function_gene < N_FUNCTIONS:
            raise ValueError(
                f"function gene must be in [0, {N_FUNCTIONS - 1}] or DUMMY_FAULT_GENE, "
                f"got {function_gene}"
            )
        if function_gene not in self._cache:
            self._cache[function_gene] = self._generate(function_gene)
        return self._cache[function_gene]

    def dummy_fault(self) -> PartialBitstream:
        """The dummy-PE bitstream used for fault injection."""
        return self.get(DUMMY_FAULT_GENE)

    def __len__(self) -> int:
        """Number of functional bitstreams in the library (excludes the dummy)."""
        return N_FUNCTIONS

    def total_storage_bytes(self) -> int:
        """External-memory footprint of the functional library."""
        return N_FUNCTIONS * self.get(0).size_bytes
