"""Frame-addressable configuration-memory model of the FPGA fabric.

The fabric is divided into *reconfigurable regions*, one per PE position of
every processing array, following the floorplan of the paper (§VI.A): each
PE occupies two CLB columns by five CLB rows (a quarter of a clock region),
each 4x4 array occupies eight CLB columns of one clock region, and arrays
stack vertically, one clock region per Array Control Block.

Each region stores:

* the **configuration words** currently written into it (the readback
  view of the configuration memory),
* the **function gene** those words implement (the golden intent),
* fault state: whether the region's configuration has been corrupted by a
  transient upset (SEU — repairable by rewriting the golden bitstream) and
  whether the silicon under it is permanently damaged (LPD — a region that
  misbehaves no matter what is written into it).

The behavioural consequence of fault state is exposed through
:meth:`FpgaFabric.effective_faults`, which the Array Control Block queries
before evaluating a candidate: a region that is corrupted or damaged makes
the corresponding PE produce garbage, which is exactly the paper's PE-level
fault model.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.pe_library import PEFunction
from repro.array.systolic_array import ArrayGeometry
from repro.fpga.bitstream import DUMMY_FAULT_GENE, BitstreamLibrary, PartialBitstream

__all__ = ["RegionAddress", "RegionState", "FpgaFabric"]

#: Stream tag mixed into the fabric's SEU-targeting seed so the derived
#: stream is distinct from every other consumer of the same base seed.
#: ``FpgaFabric(seed=s)`` corrupts bits from
#: ``SeedSequence([_SEU_STREAM_TAG, s])`` (``s = 0`` when no seed is
#: given), making SEU campaigns replayable by recording ``s`` alone —
#: part of the documented RNG determinism contract
#: (``docs/architecture.md``).
_SEU_STREAM_TAG = 0x5EB1F1A5


@dataclass(frozen=True, order=True)
class RegionAddress:
    """Address of one reconfigurable PE region.

    Attributes
    ----------
    array_index:
        Which processing array (equivalently which ACB / clock region).
    row, col:
        PE position within that array.
    """

    array_index: int
    row: int
    col: int

    def __post_init__(self) -> None:
        if self.array_index < 0 or self.row < 0 or self.col < 0:
            raise ValueError("region address components must be non-negative")


@dataclass
class RegionState:
    """Mutable state of one reconfigurable region."""

    address: RegionAddress
    configured_gene: int = int(PEFunction.IDENTITY_W)
    words: Optional[np.ndarray] = field(default=None, repr=False)
    seu_corrupted: bool = False
    permanently_damaged: bool = False
    reconfiguration_count: int = 0

    @property
    def behaving_faulty(self) -> bool:
        """Whether the PE implemented by this region currently misbehaves."""
        return self.seu_corrupted or self.permanently_damaged or (
            self.configured_gene == DUMMY_FAULT_GENE
        )


class FpgaFabric:
    """Configuration memory of the reconfigurable part of the device.

    Parameters
    ----------
    n_arrays:
        Number of processing arrays (ACBs) floorplanned on the device.
    geometry:
        Per-array geometry (defaults to the paper's 4x4 array).
    library:
        Partial-bitstream library used to fill regions (a default library is
        created when omitted).
    seed:
        Base seed of the fabric's own SEU-targeting stream, used by
        :meth:`corrupt_region` when the caller supplies neither a bit
        index nor a generator.  Defaults to a documented constant
        (seed 0 under :data:`_SEU_STREAM_TAG`) so even the implicit
        path is replayable; pass the platform/bitstream seed to tie the
        stream to the experiment spec.
    """

    def __init__(
        self,
        n_arrays: int = 3,
        geometry: ArrayGeometry = ArrayGeometry(),
        library: Optional[BitstreamLibrary] = None,
        seed: Optional[int] = None,
    ) -> None:
        if n_arrays < 1:
            raise ValueError(f"n_arrays must be >= 1, got {n_arrays}")
        self.n_arrays = n_arrays
        self.geometry = geometry
        self._seed_was_defaulted = seed is None
        self.seed = 0 if seed is None else int(seed)
        self._seu_rng = np.random.default_rng(
            np.random.SeedSequence([_SEU_STREAM_TAG, self.seed])
        )
        self.library = library if library is not None else BitstreamLibrary(
            pe_clb_columns=geometry.pe_clb_columns
        )
        self._regions: Dict[RegionAddress, RegionState] = {}
        for array_index in range(n_arrays):
            for row in range(geometry.rows):
                for col in range(geometry.cols):
                    address = RegionAddress(array_index, row, col)
                    golden = self.library.get(int(PEFunction.IDENTITY_W))
                    self._regions[address] = RegionState(
                        address=address,
                        configured_gene=golden.function_gene,
                        words=golden.words.copy(),
                    )

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def _check_address(self, address: RegionAddress) -> RegionAddress:
        if address not in self._regions:
            raise KeyError(f"no reconfigurable region at {address}")
        return address

    def region(self, address: RegionAddress) -> RegionState:
        """Return the state of the region at ``address``."""
        return self._regions[self._check_address(address)]

    def regions_of_array(self, array_index: int) -> List[RegionState]:
        """All region states belonging to one processing array."""
        if not 0 <= array_index < self.n_arrays:
            raise ValueError(f"array_index out of range: {array_index}")
        return [
            state
            for address, state in sorted(self._regions.items())
            if address.array_index == array_index
        ]

    def all_addresses(self) -> List[RegionAddress]:
        """All region addresses, sorted."""
        return sorted(self._regions)

    @property
    def n_regions(self) -> int:
        """Total number of reconfigurable PE regions."""
        return len(self._regions)

    # ------------------------------------------------------------------ #
    # Configuration access (used by the reconfiguration engine / scrubber)
    # ------------------------------------------------------------------ #
    def write_region(self, address: RegionAddress, bitstream: PartialBitstream) -> None:
        """Write a partial bitstream into a region (the writeback step).

        Writing a functional bitstream clears any SEU corruption of the
        region (the configuration memory now holds a clean copy); it does
        not repair permanent damage.
        """
        state = self.region(address)
        state.words = bitstream.words.copy()
        state.configured_gene = bitstream.function_gene
        state.seu_corrupted = False
        state.reconfiguration_count += 1

    def readback_region(self, address: RegionAddress) -> np.ndarray:
        """Read the configuration words currently stored in a region."""
        state = self.region(address)
        assert state.words is not None
        return state.words.copy()

    def verify_region(self, address: RegionAddress) -> bool:
        """Compare a region's readback against the golden bitstream of its gene.

        Returns ``True`` when the configuration is intact.  This is the check
        a scrubber performs ("reading the configuration memory to check for
        faults, and re-writing it in case that any fault is found", §II).
        """
        state = self.region(address)
        golden = self.library.get(state.configured_gene)
        assert state.words is not None
        return bool(np.array_equal(state.words, golden.words))

    # ------------------------------------------------------------------ #
    # Fault state manipulation (used by the fault injector)
    # ------------------------------------------------------------------ #
    def corrupt_region(self, address: RegionAddress, bit_index: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None) -> int:
        """Flip one configuration bit in a region (an SEU).  Returns the bit index.

        The flipped bit is ``bit_index`` when given, otherwise a draw from
        ``rng``; with neither, the draw comes from the fabric's own seeded
        SEU stream (derived from the constructor ``seed``) instead of the
        old unseeded fallback, so SEU campaigns replay bit-for-bit from the
        recorded seed.
        """
        state = self.region(address)
        assert state.words is not None
        n_bits = state.words.size * 32
        if bit_index is None:
            if rng is None:
                if self._seed_was_defaulted:
                    # Surface the behaviour change from the old unseeded
                    # fallback: fully implicit draws are now deterministic
                    # (documented default seed 0), so independently created
                    # seedless fabrics share one stream.
                    warnings.warn(
                        "FpgaFabric.corrupt_region() without an rng on a fabric "
                        "constructed without a seed draws from the documented "
                        "default stream (seed 0) instead of an unseeded "
                        "generator; pass FpgaFabric(seed=...) or an explicit "
                        "rng so the stream identity is part of the experiment "
                        "spec",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                rng = self._seu_rng
            bit_index = int(rng.integers(0, n_bits))
        if not 0 <= bit_index < n_bits:
            raise ValueError(f"bit index {bit_index} out of range [0, {n_bits})")
        word_index, bit_in_word = divmod(bit_index, 32)
        state.words = state.words.copy()
        state.words[word_index] ^= np.uint32(1 << bit_in_word)
        state.seu_corrupted = True
        return bit_index

    def damage_region(self, address: RegionAddress) -> None:
        """Mark a region as permanently damaged (an LPD)."""
        self.region(address).permanently_damaged = True

    def repair_region(self, address: RegionAddress) -> None:
        """Clear permanent damage (used by tests to model device replacement)."""
        self.region(address).permanently_damaged = False

    # ------------------------------------------------------------------ #
    # Behavioural queries used by the platform layer
    # ------------------------------------------------------------------ #
    def effective_faults(self, array_index: int) -> List[Tuple[int, int]]:
        """(row, col) positions of array ``array_index`` whose PE misbehaves."""
        return [
            (state.address.row, state.address.col)
            for state in self.regions_of_array(array_index)
            if state.behaving_faulty
        ]

    def configured_genes(self, array_index: int) -> np.ndarray:
        """The function genes currently configured on one array, as a 2-D array."""
        genes = np.zeros((self.geometry.rows, self.geometry.cols), dtype=np.int16)
        for state in self.regions_of_array(array_index):
            genes[state.address.row, state.address.col] = state.configured_gene
        return genes

    def total_reconfigurations(self) -> int:
        """Total per-region reconfiguration count since construction."""
        return sum(state.reconfiguration_count for state in self._regions.values())
