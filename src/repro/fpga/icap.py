"""ICAP (Internal Configuration Access Port) timing model.

The reconfiguration engine of the paper reads and writes configuration
frames through the ICAP, a 32-bit port clocked at a nominal 100 MHz.  One
word is transferred per cycle, so the transfer time of a block of frames is
simply ``words / frequency`` plus a small per-transaction command overhead
(sync words, frame-address register writes, desync).

The model is deliberately simple — the evaluation section only ever uses
the aggregate per-PE latency — but it keeps the pieces (frame counts, word
rate, overhead) separate so that experiments can ask "what if the ICAP ran
at 200 MHz" or "what if the PE footprint doubled" and get a consistent
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IcapModel"]

#: Virtex-5 configuration frame size in 32-bit words.
FRAME_WORDS = 41

#: Configuration frames per CLB column within one clock region (Virtex-5).
FRAMES_PER_CLB_COLUMN = 36


@dataclass(frozen=True)
class IcapModel:
    """Timing model of the ICAP port.

    Parameters
    ----------
    clock_hz:
        ICAP clock frequency (paper: nominal 100 MHz).
    word_bits:
        Port width in bits (Virtex-5 ICAP: 32).
    command_overhead_words:
        Extra words per reconfiguration transaction (synchronisation,
        frame-address setup, desynchronisation and the engine's internal
        pipeline refill).  The default is calibrated so that one PE
        (2 CLB columns, readback + writeback) takes exactly the paper's
        67.53 µs.
    """

    clock_hz: float = 100e6
    word_bits: int = 32
    command_overhead_words: int = 849

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.word_bits not in (8, 16, 32):
            raise ValueError("ICAP word width must be 8, 16 or 32 bits")
        if self.command_overhead_words < 0:
            raise ValueError("command_overhead_words must be non-negative")

    @property
    def word_period_s(self) -> float:
        """Seconds per transferred word."""
        return 1.0 / self.clock_hz

    def transfer_time_s(self, n_words: int) -> float:
        """Time to stream ``n_words`` configuration words (no overhead)."""
        if n_words < 0:
            raise ValueError("n_words must be non-negative")
        return n_words * self.word_period_s

    def transaction_time_s(self, n_words: int) -> float:
        """Time for a complete ICAP transaction of ``n_words`` plus overhead."""
        return self.transfer_time_s(n_words + self.command_overhead_words)

    def frames_to_words(self, n_frames: int) -> int:
        """Number of 32-bit words occupied by ``n_frames`` configuration frames."""
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        return n_frames * FRAME_WORDS
