"""Fault models and fault injection.

SRAM-based FPGAs in space suffer two kinds of faults (paper §II):

* **SEU** (Single Event Upset) — a transient bit flip in the configuration
  memory.  The logic misbehaves until the corrupted frames are rewritten
  (scrubbing); the silicon itself is healthy.
* **LPD** (Local Permanent Damage) — permanent damage due to aging or
  high-energy particles.  Rewriting the configuration does not help; the
  only mitigation is to stop using the damaged resources, which is what the
  evolutionary self-healing strategies do.

The paper emulates faults at PE granularity by reconfiguring the target PE
with a dummy bitstream whose output is random (§VI.D).  The injector below
supports that PE-level model plus explicit SEU bit flips, and records every
injection so that experiments can perform the systematic per-position fault
sweeps the paper refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.fpga.fabric import FpgaFabric, RegionAddress
from repro.fpga.reconfiguration_engine import ReconfigurationEngine

__all__ = ["FaultType", "FaultRecord", "FaultInjector"]


class FaultType(Enum):
    """Kinds of injectable faults."""

    SEU = "seu"              #: transient configuration-memory bit flip
    LPD = "lpd"              #: local permanent damage of the region
    PE_DUMMY = "pe_dummy"    #: the paper's PE-level dummy-bitstream fault


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault."""

    fault_type: FaultType
    address: RegionAddress
    detail: Optional[int] = None  #: flipped bit index for SEUs, else None


class FaultInjector:
    """Inject SEUs, LPDs and PE-level dummy faults into the fabric.

    Parameters
    ----------
    fabric:
        Configuration-memory model.
    engine:
        Optional reconfiguration engine; required only for PE-dummy
        injection (which, as in the paper, is performed *through* the
        engine rather than by poking the model directly).
    rng:
        Seed or generator for random target selection.  When omitted, the
        injector derives a deterministic stream from the fabric's seed
        (tagged so it never aliases the fabric's own SEU stream) instead
        of an unseeded generator — random fault targeting is part of an
        experiment's spec and must replay from recorded seeds alone.
    """

    #: Stream tag for the injector's derived target-selection stream.
    _TARGET_STREAM_TAG = 0x7A26E7

    def __init__(
        self,
        fabric: FpgaFabric,
        engine: Optional[ReconfigurationEngine] = None,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        self.fabric = fabric
        self.engine = engine
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        elif rng is not None:
            self.rng = np.random.default_rng(rng)
        else:
            self.rng = np.random.default_rng(
                np.random.SeedSequence([self._TARGET_STREAM_TAG, fabric.seed])
            )
        self.injected: List[FaultRecord] = []

    # ------------------------------------------------------------------ #
    def _random_address(self) -> RegionAddress:
        addresses = self.fabric.all_addresses()
        return addresses[int(self.rng.integers(0, len(addresses)))]

    def inject_seu(
        self, address: Optional[RegionAddress] = None, bit_index: Optional[int] = None
    ) -> FaultRecord:
        """Flip one configuration bit (transient fault).

        Returns the :class:`FaultRecord`; the region will misbehave until a
        scrub rewrites its golden configuration.
        """
        if address is None:
            address = self._random_address()
        flipped = self.fabric.corrupt_region(address, bit_index=bit_index, rng=self.rng)
        record = FaultRecord(FaultType.SEU, address, detail=flipped)
        self.injected.append(record)
        return record

    def inject_lpd(self, address: Optional[RegionAddress] = None) -> FaultRecord:
        """Permanently damage a region (LPD).  Scrubbing will not repair it."""
        if address is None:
            address = self._random_address()
        self.fabric.damage_region(address)
        record = FaultRecord(FaultType.LPD, address)
        self.injected.append(record)
        return record

    def inject_pe_dummy(self, address: Optional[RegionAddress] = None) -> FaultRecord:
        """Inject the paper's PE-level fault: reconfigure with the dummy bitstream.

        Requires a reconfiguration engine (fault emulation "is carried out
        using the same mechanism that is used during adaptation, that is,
        the DPR achieved by the reconfiguration engine").
        """
        if self.engine is None:
            raise RuntimeError("PE-dummy injection requires a ReconfigurationEngine")
        if address is None:
            address = self._random_address()
        self.engine.inject_dummy_pe(address)
        record = FaultRecord(FaultType.PE_DUMMY, address)
        self.injected.append(record)
        return record

    # ------------------------------------------------------------------ #
    def systematic_positions(self, array_index: int) -> List[Tuple[int, int]]:
        """All (row, col) positions of one array, for systematic fault sweeps.

        The paper's single-array fault analysis injected faults "in each
        position of a single 4x4 processing array"; experiments use this
        helper to iterate that sweep over every array of the platform.
        """
        geometry = self.fabric.geometry
        if not 0 <= array_index < self.fabric.n_arrays:
            raise ValueError(f"array_index out of range: {array_index}")
        return [
            (row, col)
            for row in range(geometry.rows)
            for col in range(geometry.cols)
        ]

    def faults_in_array(self, array_index: int) -> List[FaultRecord]:
        """Injected faults whose target lies in the given array."""
        return [
            record for record in self.injected if record.address.array_index == array_index
        ]

    def clear_history(self) -> None:
        """Forget the injection log (fault state in the fabric is untouched)."""
        self.injected.clear()
