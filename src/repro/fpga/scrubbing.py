"""Configuration scrubbing.

Scrubbing reads the configuration memory, checks it against the golden
bitstreams and rewrites any corrupted frames.  It repairs SEUs but not
permanent damage; the self-healing strategies of the paper use exactly this
asymmetry to *classify* a detected fault: if re-writing the last
configuration does not restore the calibration fitness, the fault is
permanent and an evolution (or imitation) run is launched (§V.A steps f-i,
§V.B steps d-g).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.fpga.fabric import FpgaFabric, RegionAddress
from repro.fpga.reconfiguration_engine import ReconfigurationEngine

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    """Result of one scrub pass.

    Attributes
    ----------
    checked:
        Regions whose configuration was read back and verified.
    corrupted:
        Regions found with corrupted configuration (SEUs) and rewritten.
    still_damaged:
        Regions that remain misbehaving after the rewrite — i.e. regions
        with permanent damage, which scrubbing cannot repair.
    elapsed_s:
        Engine busy time consumed by the scrub pass.
    """

    checked: List[RegionAddress] = field(default_factory=list)
    corrupted: List[RegionAddress] = field(default_factory=list)
    still_damaged: List[RegionAddress] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def n_repaired(self) -> int:
        """Number of regions whose corruption was repaired."""
        return len(self.corrupted)

    @property
    def clean(self) -> bool:
        """True when nothing remains wrong after the pass.

        A scrub that found SEU corruption and rewrote every corrupted
        region *is* a clean pass — the §V.A decision step treats the
        fault as a repaired transient.  (Before v1.4 this returned
        ``False`` whenever corruption had been found, even though the
        rewrite had already removed it, misclassifying successful
        scrubs; use :attr:`found_corruption` for the old "was anything
        wrong at all" question.)
        """
        return not self.still_damaged

    @property
    def found_corruption(self) -> bool:
        """True when the pass found (and rewrote) corrupted configuration."""
        return bool(self.corrupted)

    @property
    def fully_repaired(self) -> bool:
        """True when corruption was found and the rewrite removed all of it.

        This is the §V.A steps f-h predicate: the detected fault was a
        transient SEU — scrubbing repaired it and no permanent damage
        remains — so no evolutionary recovery is needed.
        """
        return bool(self.corrupted) and not self.still_damaged


class Scrubber:
    """Readback-and-rewrite scrubber built on the reconfiguration engine."""

    def __init__(self, fabric: FpgaFabric, engine: ReconfigurationEngine) -> None:
        self.fabric = fabric
        self.engine = engine

    def scrub_region(self, address: RegionAddress) -> ScrubReport:
        """Scrub a single region."""
        return self.scrub(regions=[address])

    def scrub_array(self, array_index: int) -> ScrubReport:
        """Scrub every region of one processing array."""
        addresses = [
            state.address for state in self.fabric.regions_of_array(array_index)
        ]
        return self.scrub(regions=addresses)

    def scrub(self, regions: Optional[Sequence[RegionAddress]] = None) -> ScrubReport:
        """Scrub the given regions (or the whole fabric when omitted).

        For every region: read back, verify against the golden bitstream of
        the configured gene and rewrite if the verification fails.  Regions
        flagged as permanently damaged are reported in ``still_damaged``
        whether or not their configuration content was also corrupted.
        """
        if regions is None:
            regions = self.fabric.all_addresses()
        report = ScrubReport()
        for address in regions:
            report.checked.append(address)
            report.elapsed_s += self.engine.readback(address)
            state = self.fabric.region(address)
            if not self.fabric.verify_region(address):
                report.corrupted.append(address)
                report.elapsed_s += self.engine.scrub_rewrite(address)
            if state.permanently_damaged:
                report.still_damaged.append(address)
        return report
