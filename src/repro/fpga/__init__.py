"""FPGA substrate: configuration memory, partial bitstreams, DPR and faults.

The paper's platform runs on a Xilinx Virtex-5 LX110T and uses native
Dynamic Partial Reconfiguration (DPR) through a custom reconfiguration
engine attached to the ICAP.  None of that hardware exists here, so this
package provides a behavioural model that preserves the two properties the
evaluation depends on:

1. **Timing** — reconfiguring one PE costs 67.53 µs with the ICAP at its
   nominal 100 MHz, including the readback / relocation / writeback cycle
   (paper §VI.A).  The model derives that figure from frame counts and the
   ICAP word rate so that alternative geometries scale sensibly.
2. **Fault semantics** — transient faults (SEUs) corrupt configuration
   memory and are repaired by scrubbing; permanent faults (LPDs) survive
   scrubbing and can only be mitigated by evolving around the damaged
   region (paper §II, §V).

Modules
-------
:mod:`repro.fpga.icap`                    — ICAP port timing model.
:mod:`repro.fpga.bitstream`               — partial bitstream (PBS) library.
:mod:`repro.fpga.fabric`                  — frame-addressable configuration memory.
:mod:`repro.fpga.reconfiguration_engine`  — the shared reconfiguration engine.
:mod:`repro.fpga.faults`                  — SEU / LPD injection.
:mod:`repro.fpga.scrubbing`               — configuration scrubbing.
:mod:`repro.fpga.resources`               — resource-utilisation model (§VI.A).
"""

from repro.fpga.bitstream import BitstreamLibrary, PartialBitstream
from repro.fpga.fabric import FpgaFabric, RegionAddress, RegionState
from repro.fpga.faults import FaultInjector, FaultRecord, FaultType
from repro.fpga.icap import IcapModel
from repro.fpga.reconfiguration_engine import ReconfigurationEngine, ReconfigurationStats
from repro.fpga.resources import ResourceModel, ResourceReport
from repro.fpga.scrubbing import ScrubReport, Scrubber

__all__ = [
    "BitstreamLibrary",
    "PartialBitstream",
    "FpgaFabric",
    "RegionAddress",
    "RegionState",
    "FaultInjector",
    "FaultRecord",
    "FaultType",
    "IcapModel",
    "ReconfigurationEngine",
    "ReconfigurationStats",
    "ResourceModel",
    "ResourceReport",
    "ScrubReport",
    "Scrubber",
]
