"""String-keyed strategy registries for the unified Session API.

The platform is explicitly scalable — "multiple arrays can be directly
built up by assembling the required number of these modules" (§III.B) —
and the same applies to its workloads: evolution strategies, self-healing
strategies, imaging tasks and experiment runners are all looked up *by
name* so that new ones (including third-party plugins) can be added
without touching any dispatch code.

Four registries are provided:

``driver``
    Evolution strategies (the four §IV.B modes plus the §VI.B two-level
    EA).  Entries are strategy adapter classes with ``build(platform,
    config)`` and ``run(driver, task, config, **runtime)`` methods; see
    :mod:`repro.api.builtins`.
``self_healing``
    Self-healing strategies (§V).  Entries are factories
    ``(platform, config, calibration_image, calibration_reference) ->
    strategy object``.
``task``
    Imaging tasks.  Entries are builders ``(TaskSpec) -> ImagePair``.
``experiment``
    Paper-figure experiment runners; entries are
    :class:`repro.api.experiment.ExperimentSpec` objects the CLI uses to
    build its subcommands.

Registering a new strategy is one decorator — here against a scratch
registry (real plugins use ``register(kind, name)`` against the four
process-wide registries the same way):

>>> from repro.api.registry import Registry, UnknownStrategyError
>>> demo = Registry("demo strategy")
>>> @demo.register("mine")
... def build_mine():
...     return 42
>>> demo.get("mine")()
42
>>> sorted(demo.names())
['mine']
>>> demo.get("typo")
Traceback (most recent call last):
    ...
repro.api.registry.UnknownStrategyError: unknown demo strategy 'typo'; \
available: mine

Duplicate names are rejected unless explicitly replaced, so plugins
cannot silently shadow each other:

>>> demo.register("mine", build_mine)
Traceback (most recent call last):
    ...
ValueError: demo strategy 'mine' is already registered
>>> demo.register("mine", build_mine, replace=True) is build_mine
True
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

__all__ = [
    "UnknownStrategyError",
    "Registry",
    "register",
    "get_registry",
    "DRIVERS",
    "SELF_HEALERS",
    "TASKS",
    "EXPERIMENTS",
]


class UnknownStrategyError(LookupError):
    """Raised when a name is not present in a registry.

    The message lists the registered names, so a typo in a config file or
    CLI flag is immediately actionable.
    """

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        choices = ", ".join(sorted(available)) if available else "(none registered)"
        super().__init__(f"unknown {kind} {name!r}; available: {choices}")
        self.kind = kind
        self.name = name
        self.available = sorted(available)


class Registry:
    """A named mapping from strategy names to implementations."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def register(self, name: str, obj: Any = None, *, replace: bool = False):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Parameters
        ----------
        name:
            Registry key (non-empty string).
        obj:
            The implementation.  When omitted, returns a decorator.
        replace:
            Allow overwriting an existing entry (default: a duplicate name
            raises ``ValueError`` so plugins cannot silently shadow each
            other).
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")

        def add(value: Any) -> Any:
            if not replace and name in self._entries:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[name] = value
            return value

        if obj is None:
            return add
        return add(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (mostly useful for tests and plugin teardown)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Any:
        """Look up ``name``; raises :class:`UnknownStrategyError` when absent."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownStrategyError(self.kind, name, list(self._entries)) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"


#: Evolution-driver strategies (parallel, independent, cascaded, imitation, two_level).
DRIVERS = Registry("evolution driver")
#: Self-healing strategies (cascaded, tmr).
SELF_HEALERS = Registry("self-healing strategy")
#: Imaging-task builders (salt_pepper_denoise, edge_detect, ...).
TASKS = Registry("imaging task")
#: Experiment runners backing the CLI subcommands.
EXPERIMENTS = Registry("experiment")

_KINDS: Dict[str, Registry] = {
    "driver": DRIVERS,
    "self_healing": SELF_HEALERS,
    "task": TASKS,
    "experiment": EXPERIMENTS,
}


def get_registry(kind: str) -> Registry:
    """The registry for ``kind`` (``driver``/``self_healing``/``task``/``experiment``)."""
    try:
        return _KINDS[kind]
    except KeyError:
        raise UnknownStrategyError("registry kind", kind, list(_KINDS)) from None


def register(kind: str, name: str, obj: Any = None, *, replace: bool = False):
    """Register an implementation in the ``kind`` registry.

    Usable as a decorator (``@register("driver", "parallel")``) or as a
    plain call (``register("task", "mine", builder)``).
    """
    return get_registry(kind).register(name, obj, replace=replace)
