"""Experiment registration: how paper-figure runners plug into the CLI.

Each module in :mod:`repro.experiments` registers an
:class:`ExperimentSpec` describing its CLI subcommand — name, help text,
argument configuration, the runner producing a
:class:`~repro.api.artifact.RunArtifact`, and the table renderer.  The
CLI iterates the ``experiment`` registry instead of hard-wiring one
function per figure, so new experiments (including third-party plugins)
appear as subcommands simply by registering.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.api.artifact import RunArtifact
from repro.api.registry import register

__all__ = [
    "ExperimentSpec",
    "register_experiment",
    "add_common_options",
    "add_executor_options",
    "scenario_from_args",
    "print_table",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One CLI-exposed experiment.

    Attributes
    ----------
    name:
        Subcommand name (e.g. ``new-ea``).
    help:
        One-line help shown in ``repro-ehw --help``.
    configure:
        Adds the experiment's arguments to its subparser.
    run:
        Executes the experiment from parsed arguments and returns a
        :class:`RunArtifact`.
    render:
        Prints the artifact as the human-readable tables the benchmark
        harness and the paper comparison expect.
    """

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], RunArtifact]
    render: Callable[[RunArtifact], None]


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` in the ``experiment`` registry and return it."""
    return register("experiment", spec.name, spec)


def add_common_options(
    parser: argparse.ArgumentParser,
    generations: int,
    image_side: int = 32,
    runs: int = 3,
) -> None:
    """Add the budget options every experiment subcommand shares."""
    from repro.backends import BACKENDS

    parser.add_argument("--seed", type=int, default=2013, help="random seed")
    parser.add_argument("--generations", type=int, default=generations,
                        help="generation budget")
    parser.add_argument("--image-side", type=int, default=image_side,
                        help="test image side in pixels")
    parser.add_argument("--runs", type=int, default=runs, help="repetitions")
    parser.add_argument(
        "--backend",
        default="reference",
        choices=sorted(BACKENDS.names()),
        help="array evaluation backend (bit-exact; changes wall-clock "
             "time only)",
    )
    parser.add_argument(
        "--population-batching",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="score each generation's offspring population through the "
             "backend's fused evaluate_population entry point (bit-exact; "
             "changes wall-clock time only; --no-population-batching "
             "restores the per-candidate loop)",
    )
    parser.add_argument(
        "--fitness-cache",
        metavar="DIR",
        default=None,
        help="persist evaluated fitnesses under DIR and reuse them across "
             "runs (opt-in; value-transparent — cached values are exactly "
             "what a full evaluation would produce)",
    )
    parser.add_argument(
        "--racing",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reject offspring early once their partial error provably "
             "exceeds the parent's fitness (opt-in; exact bound — selection "
             "and fitness trajectories are bit-identical, only wall-clock "
             "time changes)",
    )


def scenario_from_args(args: argparse.Namespace):
    """Resolve the CLI-level ``--scenario`` value of an experiment run.

    The flag is added centrally by :func:`repro.cli.build_parser` (every
    subcommand accepts it); experiments whose workload evolves call this
    helper and thread the result into their
    :class:`~repro.api.config.EvolutionConfig`.  Returns ``None``, a
    registered scenario name, or an inline scenario dict loaded from a
    ``FaultScenario`` JSON file.
    """
    from repro.scenarios import scenario_from_cli_arg

    return scenario_from_cli_arg(getattr(args, "scenario", None))


def add_executor_options(parser: argparse.ArgumentParser) -> None:
    """Add the campaign-executor options of embarrassingly parallel experiments."""
    # Imported lazily: the api layer sits below repro.runtime, and the
    # registry keeps the choices in sync with pluggable executors.
    from repro.runtime.executors import EXECUTORS

    parser.add_argument(
        "--executor",
        default="serial",
        choices=sorted(EXECUTORS.names()),
        help="campaign execution backend for the experiment's scenario grid",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker cap for the thread/process executors",
    )


def print_table(title: str, rows: Iterable[Mapping], columns: Sequence[str]) -> None:
    """Print experiment rows as a fixed-width table."""
    rows = list(rows)
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {c: max(len(c), *(len(fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(fmt(row.get(c)).ljust(widths[c]) for c in columns))
