"""Content-addressed signatures over the Session-API configs.

The service layer dedupes work by *content*: two campaign runs whose
resolved configs, runner and derived seed are identical will compute the
identical :class:`~repro.api.artifact.RunArtifact` (the determinism
guarantee the executors are held to), so re-evolving the second one is
pure waste.  This module derives the key that makes the observation
actionable: a SHA-256 signature over the canonical JSON form of the
run's resolved inputs.

Signatures are platform- and process-independent (canonical JSON, sorted
keys, no salted ``hash``) — the same property the campaign seed
derivation relies on — so a signature computed by a submitting client
matches the one computed by a worker on another machine.

>>> from repro.api.signature import content_signature, run_signature
>>> content_signature({"b": 1, "a": 2}) == content_signature({"a": 2, "b": 1})
True
>>> from repro.api import EvolutionConfig, PlatformConfig, TaskSpec
>>> sig = run_signature(
...     runner="evolve", seed=7,
...     platform=PlatformConfig(seed=1), evolution=EvolutionConfig(seed=2),
...     task=TaskSpec(seed=3),
... )
>>> len(sig), sig == run_signature(
...     runner="evolve", seed=7,
...     platform=PlatformConfig(seed=1), evolution=EvolutionConfig(seed=2),
...     task=TaskSpec(seed=3),
... )
(64, True)
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

__all__ = ["canonical_json", "content_signature", "run_signature"]

#: Evolution-config knobs that are *value-transparent*: they change how
#: fitnesses are computed (cache tiers, racing early rejection — see
#: :mod:`repro.ea.pipeline`), never what they are, so two runs differing
#: only in these knobs produce identical artifacts and may share one
#: dedupe entry.  Excluded from :func:`run_signature`.  The pre-1.9 knobs
#: with the same property (``batched``, ``population_batching``) stay in
#: the signature so every signature computed before 1.9 remains valid.
_VALUE_TRANSPARENT_EVOLUTION_KNOBS = frozenset({"fitness_cache", "racing"})


def canonical_json(payload: Any) -> str:
    """The canonical JSON form signatures are computed over.

    Sorted keys and compact separators make the text independent of dict
    insertion order and formatting; ``default=str`` keeps the function
    total over exotic-but-stringifiable values (the same convention the
    campaign run-id digest uses).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_signature(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _as_dict(config: Any) -> Optional[Mapping[str, Any]]:
    if config is None:
        return None
    to_dict = getattr(config, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(config, Mapping):
        return dict(config)
    raise TypeError(f"cannot derive a signature from {type(config)!r}")


def run_signature(
    *,
    runner: str,
    seed: int,
    platform: Any,
    evolution: Any,
    task: Any,
    healing: Any = None,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """The content-addressed dedupe key of one fully resolved run.

    Covers exactly what determines a run's results — the resolved configs
    (after axis overrides and seed derivation), the runner, its params
    and the derived run seed — and deliberately *excludes* campaign
    identity (name, run id, run index, the override labels): two
    campaigns that resolve to the same work share the same signature,
    which is what makes cross-submission dedupe possible.  Value-transparent
    evolution knobs (:data:`_VALUE_TRANSPARENT_EVOLUTION_KNOBS`) are
    likewise excluded: a run with the persistent fitness cache or racing
    enabled computes the identical artifact, so it deduplicates against
    the plain run.
    """
    evolution_dict = _as_dict(evolution)
    if evolution_dict is not None:
        evolution_dict = {
            key: value
            for key, value in dict(evolution_dict).items()
            if key not in _VALUE_TRANSPARENT_EVOLUTION_KNOBS
        }
    payload = {
        "runner": runner,
        "seed": int(seed),
        "platform": _as_dict(platform),
        "evolution": evolution_dict,
        "task": _as_dict(task),
        "healing": _as_dict(healing),
        "params": dict(params or {}),
    }
    return content_signature(payload)
