"""Built-in registry entries: the paper's strategies, registered by name.

This module wires the four §IV.B evolution drivers (plus the §VI.B
two-level EA), the two §V self-healing strategies and the synthetic
imaging tasks into :mod:`repro.api.registry`, giving every consumer —
the :class:`~repro.api.session.EvolutionSession` façade, the CLI, config
files — one string-keyed way to select them.  Third-party workloads
register themselves the same way with ``@register(...)``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.api.config import EvolutionConfig, SelfHealingConfig, TaskSpec
from repro.api.registry import register
from repro.core.evolution import (
    CascadedEvolution,
    EvolutionDriver,
    ImitationEvolution,
    IndependentEvolution,
    ParallelEvolution,
    PlatformEvolutionResult,
)
from repro.core.modes import CascadeFitnessMode, CascadeSchedule
from repro.core.self_healing import CascadedSelfHealing, TmrSelfHealing
from repro.core.two_level_ea import TwoLevelMutationEvolution
from repro.imaging.images import ImagePair, make_training_pair

__all__ = ["EvolutionStrategy"]


# --------------------------------------------------------------------------- #
# Evolution drivers
# --------------------------------------------------------------------------- #
class EvolutionStrategy:
    """Adapter between a declarative :class:`EvolutionConfig` and a driver class.

    Registered driver entries subclass this: :meth:`build` instantiates the
    legacy driver from the config, and :meth:`run` maps the uniform
    ``evolve(task)`` call onto the driver's native ``run`` signature.
    ``runtime`` carries non-serialisable per-call inputs (seed genotypes,
    apprentice/master indices) that do not belong in a config;
    ``runtime_keys`` names the keys a strategy consumes, so the session can
    reject typos and options left over from a different strategy instead of
    silently ignoring them.
    """

    factory = EvolutionDriver
    #: Runtime keyword arguments this strategy consumes in :meth:`run`.
    runtime_keys: frozenset = frozenset()
    #: ``EvolutionConfig.options`` keys this strategy consumes.
    option_keys: frozenset = frozenset()

    def _ea_kwargs(self, config: EvolutionConfig) -> Dict[str, Any]:
        return dict(
            n_offspring=config.n_offspring,
            mutation_rate=config.mutation_rate,
            rng=config.seed,
            accept_equal=config.accept_equal,
            batched=config.batched,
            population_batching=config.population_batching,
            fitness_cache=config.fitness_cache,
            racing=config.racing,
            scenario=config.scenario,
        )

    def build(self, platform, config: EvolutionConfig) -> EvolutionDriver:
        return self.factory(platform, **self._ea_kwargs(config))

    def run(
        self,
        driver: EvolutionDriver,
        task: ImagePair,
        config: EvolutionConfig,
        **runtime: Any,
    ) -> PlatformEvolutionResult:
        raise NotImplementedError


@register("driver", "parallel")
class ParallelStrategy(EvolutionStrategy):
    """Parallel evolution (§IV.B, Fig. 5): one task, offspring spread over arrays."""

    factory = ParallelEvolution
    runtime_keys = frozenset({"seed_genotype"})
    option_keys = frozenset({"n_arrays"})

    def build(self, platform, config: EvolutionConfig) -> EvolutionDriver:
        kwargs = self._ea_kwargs(config)
        if "n_arrays" in config.options:
            kwargs["n_arrays"] = int(config.options["n_arrays"])
        return self.factory(platform, **kwargs)

    def run(self, driver, task, config, **runtime):
        return driver.run(
            task.training,
            task.reference,
            n_generations=config.n_generations,
            seed_genotype=runtime.get("seed_genotype"),
            target_fitness=config.target_fitness,
        )


@register("driver", "two_level")
class TwoLevelStrategy(ParallelStrategy):
    """The paper's new two-level-mutation EA (§VI.B, Figs. 14-15)."""

    factory = TwoLevelMutationEvolution
    option_keys = frozenset({"n_arrays", "low_mutation_rate"})

    def build(self, platform, config: EvolutionConfig) -> EvolutionDriver:
        kwargs = self._ea_kwargs(config)
        if "n_arrays" in config.options:
            kwargs["n_arrays"] = int(config.options["n_arrays"])
        if "low_mutation_rate" in config.options:
            kwargs["low_mutation_rate"] = int(config.options["low_mutation_rate"])
        return self.factory(platform, **kwargs)


@register("driver", "independent")
class IndependentStrategy(EvolutionStrategy):
    """Independent evolution (§IV.B): each array evolves its own task sequentially.

    ``runtime["tasks"]`` may supply ``{array_index: (training, reference)}``;
    without it, every array is evolved on the session task.
    """

    factory = IndependentEvolution
    runtime_keys = frozenset({"tasks", "seed_genotypes"})

    def run(self, driver, task, config, **runtime):
        tasks = runtime.get("tasks")
        if tasks is None:
            tasks = {
                index: (task.training, task.reference)
                for index in range(driver.platform.n_arrays)
            }
        return driver.run(
            tasks=tasks,
            n_generations=config.n_generations,
            seed_genotypes=runtime.get("seed_genotypes"),
            target_fitness=config.target_fitness,
        )


@register("driver", "cascaded")
class CascadedStrategy(EvolutionStrategy):
    """Cascaded evolution (§IV.B, Fig. 6).

    Options: ``fitness_mode`` (``separate``/``merged``), ``schedule``
    (``sequential``/``interleaved``) and ``n_stages``.
    """

    factory = CascadedEvolution
    runtime_keys = frozenset({"seed_genotypes"})
    option_keys = frozenset({"fitness_mode", "schedule", "n_stages"})

    def build(self, platform, config: EvolutionConfig) -> EvolutionDriver:
        kwargs = self._ea_kwargs(config)
        if "fitness_mode" in config.options:
            kwargs["fitness_mode"] = CascadeFitnessMode(config.options["fitness_mode"])
        if "schedule" in config.options:
            kwargs["schedule"] = CascadeSchedule(config.options["schedule"])
        return self.factory(platform, **kwargs)

    def run(self, driver, task, config, **runtime):
        n_stages = config.options.get("n_stages")
        return driver.run(
            task.training,
            task.reference,
            n_generations=config.n_generations,
            n_stages=None if n_stages is None else int(n_stages),
            seed_genotypes=runtime.get("seed_genotypes"),
            target_fitness=config.target_fitness,
        )


@register("driver", "imitation")
class ImitationStrategy(EvolutionStrategy):
    """Evolution by imitation (§IV.B, Fig. 7).

    Requires ``apprentice`` and ``master`` array indices (in
    ``config.options`` or as runtime keywords); the session task's training
    image is the live input stream both arrays observe.
    """

    factory = ImitationEvolution
    runtime_keys = frozenset(
        {"apprentice", "master", "input_image", "seed_genotype", "seed_from_master"}
    )
    option_keys = frozenset({"apprentice", "master", "seed_from_master"})

    def run(self, driver, task, config, **runtime):
        def pick(key: str) -> Optional[int]:
            value = runtime.get(key, config.options.get(key))
            return None if value is None else int(value)

        apprentice = pick("apprentice")
        master = pick("master")
        if apprentice is None or master is None:
            raise ValueError(
                "imitation evolution needs 'apprentice' and 'master' array "
                "indices (pass them in EvolutionConfig.options or as "
                "session.evolve keywords)"
            )
        return driver.run(
            apprentice_index=apprentice,
            master_index=master,
            input_image=runtime.get("input_image", task.training),
            n_generations=config.n_generations,
            seed_genotype=runtime.get("seed_genotype"),
            seed_from_master=bool(
                runtime.get("seed_from_master", config.options.get("seed_from_master", True))
            ),
            target_fitness=config.target_fitness,
        )


# --------------------------------------------------------------------------- #
# Self-healing strategies
# --------------------------------------------------------------------------- #
@register("self_healing", "cascaded")
def build_cascaded_self_healing(
    platform, config: SelfHealingConfig, calibration_image, calibration_reference
) -> CascadedSelfHealing:
    """Cascaded-mode self-healing (§V.A): calibration, scrub, bypass, re-evolve."""
    return CascadedSelfHealing(
        platform,
        calibration_image=calibration_image,
        calibration_reference=calibration_reference,
        tolerance=config.tolerance,
        imitation_generations=config.imitation_generations,
        imitation_target_fitness=config.imitation_target_fitness,
        reference_image_key=config.reference_image_key,
        n_offspring=config.n_offspring,
        mutation_rate=config.mutation_rate,
        rng=config.seed,
    )


@register("self_healing", "tmr")
def build_tmr_self_healing(
    platform, config: SelfHealingConfig, calibration_image, calibration_reference
) -> TmrSelfHealing:
    """TMR-mode self-healing (§V.B): vote, scrub, classify, imitate."""
    return TmrSelfHealing(
        platform,
        pattern_image=calibration_image,
        pattern_reference=calibration_reference,
        imitation_generations=config.imitation_generations,
        imitation_target_fitness=(
            100.0
            if config.imitation_target_fitness is None
            else config.imitation_target_fitness
        ),
        paste_threshold=config.paste_threshold,
        n_offspring=config.n_offspring,
        mutation_rate=config.mutation_rate,
        rng=config.seed,
    )


# --------------------------------------------------------------------------- #
# Imaging tasks
# --------------------------------------------------------------------------- #
def _make_task_builder(name: str):
    def build_task(spec: TaskSpec) -> ImagePair:
        return make_training_pair(
            name,
            size=spec.image_side,
            seed=spec.seed,
            noise_level=spec.noise_level,
            image_kind=spec.image_kind,
        )

    build_task.__name__ = f"build_{name}_task"
    build_task.__doc__ = f"Build the {name!r} training pair from a TaskSpec."
    return build_task


for _task_name in (
    "salt_pepper_denoise",
    "gaussian_denoise",
    "edge_detect",
    "smoothing",
    "identity",
):
    register("task", _task_name, _make_task_builder(_task_name))
