"""Declarative, validated configuration objects for the Session API.

Every knob a consumer can turn is captured in one of four frozen
dataclasses — :class:`PlatformConfig`, :class:`EvolutionConfig`,
:class:`TaskSpec` and :class:`SelfHealingConfig` — each of which

* validates its fields on construction (a bad config fails at build time,
  not generations into a run);
* round-trips through plain dictionaries and JSON
  (``Config.from_dict(config.to_dict()) == config``), which is what the
  :class:`~repro.api.artifact.RunArtifact` provenance record and any
  future service/RPC layer serialise;
* knows how to ``build()`` the imperative object it describes, so the
  class-based entry points keep working unchanged underneath.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional, Type, TypeVar, Union

__all__ = [
    "PlatformConfig",
    "EvolutionConfig",
    "TaskSpec",
    "SelfHealingConfig",
]

C = TypeVar("C", bound="_ConfigBase")


@dataclass(frozen=True)
class _ConfigBase:
    """Shared dict/JSON plumbing of the config dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view suitable for JSON serialisation."""
        data: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Mapping):
                value = dict(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls: Type[C], data: Dict[str, Any]) -> C:
        """Rebuild a config from :meth:`to_dict` output (extra keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"{cls.__name__} does not accept field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def to_json(self, **kwargs: Any) -> str:
        """JSON view of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls: Type[C], text: str) -> C:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def replace(self: C, **changes: Any) -> C:
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def signature(self) -> str:
        """Content-addressed SHA-256 signature of this config.

        Two configs with equal fields share a signature regardless of how
        they were constructed — the building block of the service layer's
        run-dedupe key (see :mod:`repro.api.signature`).

        >>> from repro.api import PlatformConfig
        >>> PlatformConfig(seed=1).signature() == PlatformConfig(seed=1).signature()
        True
        >>> PlatformConfig(seed=1).signature() != PlatformConfig(seed=2).signature()
        True
        """
        from repro.api.signature import content_signature

        return content_signature(self.to_dict())


@dataclass(frozen=True)
class PlatformConfig(_ConfigBase):
    """Declarative description of an :class:`~repro.core.platform.EvolvableHardwarePlatform`.

    Parameters
    ----------
    n_arrays:
        Number of Array Control Blocks (paper: 3).
    rows, cols:
        Per-array geometry in PEs (paper: 4x4).
    fitness_voter_threshold:
        Similarity threshold of the TMR fitness voter.
    seed:
        Platform RNG seed (fault targeting, random candidates).
    backend:
        Evaluation backend of every array, by registry name
        (``"reference"`` or ``"numpy"``; see :mod:`repro.backends`).
        Backends are bit-exact against each other — this switch changes
        the simulation's wall-clock time only, never its results — so
        campaigns can sweep or pin it freely (``platform.backend`` axis,
        CLI ``--backend``).

    Examples
    --------
    >>> from repro.api import PlatformConfig
    >>> config = PlatformConfig(n_arrays=3, seed=1, backend="numpy")
    >>> PlatformConfig.from_dict(config.to_dict()) == config
    True
    >>> platform = config.build()
    >>> platform.n_arrays, platform.backend_name
    (3, 'numpy')
    >>> PlatformConfig(backend="no-such-engine")
    Traceback (most recent call last):
        ...
    repro.backends.base.UnknownBackendError: unknown evaluation backend \
'no-such-engine'; available: compiled, numpy, reference
    """

    n_arrays: int = 3
    rows: int = 4
    cols: int = 4
    fitness_voter_threshold: float = 0.0
    seed: Optional[int] = None
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.n_arrays < 1:
            raise ValueError(f"n_arrays must be >= 1, got {self.n_arrays}")
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"array geometry must be at least 1x1, got {self.rows}x{self.cols}")
        if self.fitness_voter_threshold < 0:
            raise ValueError("fitness_voter_threshold must be non-negative")
        # Fail at config-build time, not generations into a run: the name
        # must exist in the backend registry.
        from repro.backends import BACKENDS, UnknownBackendError

        if self.backend not in BACKENDS:
            raise UnknownBackendError(self.backend, BACKENDS.names())

    def build(self):
        """Instantiate the platform this config describes."""
        from repro.array.systolic_array import ArrayGeometry
        from repro.core.platform import EvolvableHardwarePlatform

        return EvolvableHardwarePlatform(
            n_arrays=self.n_arrays,
            geometry=ArrayGeometry(rows=self.rows, cols=self.cols),
            fitness_voter_threshold=self.fitness_voter_threshold,
            seed=self.seed,
            backend=self.backend,
        )


@dataclass(frozen=True)
class EvolutionConfig(_ConfigBase):
    """Declarative description of one evolution run.

    Parameters
    ----------
    strategy:
        Name of a registered evolution driver (``parallel``,
        ``independent``, ``cascaded``, ``imitation``, ``two_level``, or a
        plugin name).
    n_generations:
        Generation budget of the run.
    n_offspring:
        Offspring per generation (paper: 9).
    mutation_rate:
        Mutation rate ``k``: genes changed per offspring.
    seed:
        Seed of the EA's random stream.
    target_fitness:
        Optional early-stop threshold.
    accept_equal:
        Whether equal-fitness offspring replace the parent (neutral drift).
    batched:
        Score each generation's offspring through the vectorised
        :func:`~repro.core.evolution.evaluate_batch` pass (byte-identical
        to the sequential path, just faster).
    population_batching:
        Run the whole generation step population-batched: offspring
        construction through
        :func:`~repro.ea.mutation.mutate_population`, placement accounting
        as one vectorised diff per array, and fitness through the
        evaluation backend's fused
        :meth:`~repro.backends.base.EvaluationBackend.evaluate_population`
        entry point.  Byte-identical to the per-candidate path (same RNG
        streams, same fault draws) on every backend; takes precedence over
        ``batched``.  JSON round-trips like every other field, so it can
        be swept or pinned as the ``evolution.population_batching``
        campaign axis.
    fitness_cache:
        Opt-in persistent cross-run fitness cache: ``None`` (off, the
        default) or a directory path.  Evaluated candidates on fault-free
        arrays are looked up / published by their canonical signature
        (gene bytes + geometry + content digests of the training planes
        and reference; see :func:`repro.backends.signature.fitness_key`),
        so re-runs of overlapping campaigns skip already-known fitnesses.
        Value-transparent: cached values are exactly what a full
        evaluation would produce, on every backend.  Sweepable as the
        ``evolution.fitness_cache`` campaign axis.
    racing:
        Opt-in racing early rejection (see :mod:`repro.ea.pipeline`):
        offspring are scored block-by-block over a deterministic row
        partition and dropped once their partial SAE provably exceeds the
        parent's fitness — an exact bound, so selection and the parent
        fitness trajectory stay bit-identical to exhaustive evaluation.
        Off by default; with both this and ``fitness_cache`` off, runs
        are byte-identical to v1.8.0.  Sweepable as the
        ``evolution.racing`` campaign axis.
    scenario:
        Optional fault-scenario timeline the run evolves under: the name
        of a registered scenario (``"seu-storm"``, ``"single-seu"``, ...;
        see :data:`repro.scenarios.SCENARIOS`) or an inline
        :class:`~repro.scenarios.spec.FaultScenario` dict.  The timeline
        compiles to a deterministic per-generation event schedule from
        the platform's fabric seed, and its events (SEU arrivals, bursts,
        permanent damage, periodic scrubs) fire mid-evolution at the
        start of each generation — byte-identically across backends and
        executors.  Names are validated against the registry and inline
        dicts against the scenario spec at config-build time; the field
        JSON round-trips, so it can be swept or pinned as the
        ``evolution.scenario`` campaign axis (or field-wise through the
        ``scenario.*`` axes, see
        :class:`~repro.runtime.campaign.CampaignSpec`).
    options:
        Strategy-specific options (e.g. ``{"n_arrays": 1}`` for parallel
        evolution, ``{"fitness_mode": "merged", "schedule": "interleaved"}``
        for cascaded, ``{"low_mutation_rate": 1}`` for the two-level EA).
        Values must be JSON-serialisable.  The mapping is defensively
        copied and exposed read-only, so a config's recorded provenance
        always matches what actually ran (note: ``options`` also makes
        ``EvolutionConfig`` unhashable, unlike the other configs).

    Examples
    --------
    >>> from repro.api import EvolutionConfig
    >>> config = EvolutionConfig(strategy="cascaded", options={"n_stages": 2})
    >>> config.options["n_stages"]
    2
    >>> EvolutionConfig.from_json(config.to_json()) == config
    True
    >>> config.replace(mutation_rate=5).mutation_rate
    5
    """

    strategy: str = "parallel"
    n_generations: int = 100
    n_offspring: int = 9
    mutation_rate: int = 3
    seed: Optional[int] = None
    target_fitness: Optional[float] = None
    accept_equal: bool = True
    batched: bool = True
    population_batching: bool = True
    fitness_cache: Optional[str] = None
    racing: bool = False
    scenario: Union[str, Mapping[str, Any], None] = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ValueError("strategy must be a non-empty name")
        if self.fitness_cache is not None and not str(self.fitness_cache):
            raise ValueError("fitness_cache must be None or a non-empty directory path")
        if self.n_generations < 1:
            raise ValueError(f"n_generations must be >= 1, got {self.n_generations}")
        if self.n_offspring < 1:
            raise ValueError(f"n_offspring must be >= 1, got {self.n_offspring}")
        if self.mutation_rate < 1:
            raise ValueError(f"mutation_rate must be >= 1, got {self.mutation_rate}")
        if not isinstance(self.options, Mapping):
            raise TypeError("options must be a mapping of strategy-specific settings")
        if self.scenario is not None:
            # Fail at config-build time: names must exist in the scenario
            # registry, inline dicts must be valid FaultScenario specs.
            from repro.scenarios import normalise_scenario_field

            object.__setattr__(
                self, "scenario", normalise_scenario_field(self.scenario)
            )
        # Defensive copy behind a read-only view: a frozen config must not be
        # mutable through a shared or retained options dict.
        object.__setattr__(self, "options", MappingProxyType(dict(self.options)))


@dataclass(frozen=True)
class TaskSpec(_ConfigBase):
    """Declarative description of an imaging task (a training/reference pair).

    Parameters
    ----------
    task:
        Name of a registered imaging task (``salt_pepper_denoise``,
        ``gaussian_denoise``, ``edge_detect``, ``smoothing``, ``identity``,
        or a plugin name).
    image_side:
        Side of the square synthetic image in pixels.
    noise_level:
        Noise density (salt-and-pepper) or relative sigma (Gaussian).
    image_kind:
        Synthetic clean-image generator (see
        :func:`repro.imaging.images.make_test_image`).
    seed:
        Seed controlling image synthesis and noise.

    Examples
    --------
    >>> from repro.api import TaskSpec
    >>> pair = TaskSpec(task="identity", image_side=8, seed=1).build()
    >>> pair.training.shape
    (8, 8)
    >>> bool((pair.training == pair.reference).all())
    True
    """

    task: str = "salt_pepper_denoise"
    image_side: int = 32
    noise_level: float = 0.05
    image_kind: str = "composite"
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.task:
            raise ValueError("task must be a non-empty name")
        if self.image_side < 8:
            raise ValueError(f"image_side must be >= 8, got {self.image_side}")
        if not 0.0 <= self.noise_level <= 1.0:
            raise ValueError(f"noise_level must be in [0, 1], got {self.noise_level}")

    def build(self):
        """Materialise the :class:`~repro.imaging.images.ImagePair` for this task."""
        from repro.api.registry import TASKS

        return TASKS.get(self.task)(self)


@dataclass(frozen=True)
class SelfHealingConfig(_ConfigBase):
    """Declarative description of a self-healing strategy (§V).

    Parameters
    ----------
    strategy:
        Name of a registered self-healing strategy (``cascaded`` or
        ``tmr``, or a plugin name).
    tolerance:
        Allowed fitness deviation before a fault is declared
        (cascaded strategy).
    imitation_generations:
        Generation budget of a recovery evolution.
    imitation_target_fitness:
        Early-stop threshold of the imitation recovery.
    paste_threshold:
        TMR only: imitation fitness above which the recovered
        configuration is pasted onto every array.
    reference_image_key:
        Cascaded only: flash key of the stored reference image; when
        present, recovery re-evolves against it instead of imitating.
    scenario:
        Optional fault-scenario timeline the monitoring loop runs
        against (a registered name or an inline
        :class:`~repro.scenarios.spec.FaultScenario` dict) — the fault
        environment of the §V.A/§V.B scrub-classify-evolve lifecycle.
        Consumed by scenario-driven workloads such as the
        ``scenario-sweep`` experiment's lifecycle runner, which applies
        the timeline between healing cycles; validated and JSON
        round-tripped exactly like ``EvolutionConfig.scenario``.
    n_offspring, mutation_rate, seed:
        EA parameters of the recovery evolution.
    """

    strategy: str = "cascaded"
    tolerance: float = 0.0
    imitation_generations: int = 200
    imitation_target_fitness: Optional[float] = 100.0
    paste_threshold: float = 100.0
    reference_image_key: Optional[str] = None
    scenario: Union[str, Mapping[str, Any], None] = None
    n_offspring: int = 9
    mutation_rate: int = 3
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ValueError("strategy must be a non-empty name")
        if self.imitation_generations < 1:
            raise ValueError("imitation_generations must be >= 1")
        if self.n_offspring < 1 or self.mutation_rate < 1:
            raise ValueError("n_offspring and mutation_rate must be >= 1")
        if self.scenario is not None:
            from repro.scenarios import normalise_scenario_field

            object.__setattr__(
                self, "scenario", normalise_scenario_field(self.scenario)
            )

    def build(self, platform, calibration_image, calibration_reference):
        """Instantiate the configured strategy bound to ``platform``.

        ``calibration_image``/``calibration_reference`` are the periodic
        calibration pattern (cascaded strategy) or the pattern image and its
        expected output (TMR strategy).
        """
        from repro.api.registry import SELF_HEALERS

        factory = SELF_HEALERS.get(self.strategy)
        return factory(platform, self, calibration_image, calibration_reference)
