"""Unified Session API: declarative configs, strategy registry, one façade.

This package is the single entry point the CLI, the examples, the
experiment runners and any future service layer build on:

* **Configs** (:mod:`repro.api.config`) — frozen, validated dataclasses
  (:class:`PlatformConfig`, :class:`EvolutionConfig`, :class:`TaskSpec`,
  :class:`SelfHealingConfig`) with dict/JSON round-tripping for
  provenance.
* **Registry** (:mod:`repro.api.registry`) — string-keyed registries of
  evolution drivers, self-healing strategies, imaging tasks and
  experiment runners, extensible with the ``@register(...)`` decorator.
* **Session** (:mod:`repro.api.session`) — the
  :class:`EvolutionSession` façade:
  ``EvolutionSession(platform, evolution).evolve(task) -> RunArtifact``.
* **Artifacts** (:mod:`repro.api.artifact`) — :class:`RunArtifact`, the
  serialisable bundle of results, timing, resources and the configs that
  produced them.

The legacy class-based entry points (the driver classes of
:mod:`repro.core.evolution`, :class:`~repro.core.platform.EvolvableHardwarePlatform`)
remain fully supported; sessions drive them underneath and reproduce
their results byte for byte given the same seeds.
"""

from repro.api.artifact import RunArtifact
from repro.api.config import (
    EvolutionConfig,
    PlatformConfig,
    SelfHealingConfig,
    TaskSpec,
)
from repro.api.experiment import ExperimentSpec, register_experiment
from repro.api.registry import (
    DRIVERS,
    EXPERIMENTS,
    SELF_HEALERS,
    TASKS,
    Registry,
    UnknownStrategyError,
    get_registry,
    register,
)
from repro.api.session import EvolutionSession
from repro.api.signature import canonical_json, content_signature, run_signature

# Populate the registries with the paper's built-in strategies.
from repro.api import builtins as _builtins  # noqa: F401  (import for side effects)

#: Campaign-runtime names re-exported lazily (PEP 562) from repro.runtime,
#: so `from repro.api import CampaignSpec, run_campaign` works without the
#: api package importing the (higher) runtime layer at import time.
_RUNTIME_EXPORTS = frozenset(
    {
        "CampaignSpec",
        "RunSpec",
        "CampaignStore",
        "CampaignResult",
        "CampaignRunError",
        "run_campaign",
        "derive_seed",
        "DedupeCache",
        "EXECUTORS",
        "RUNNERS",
        "register_runner",
    }
)


def __getattr__(name: str):
    if name in _RUNTIME_EXPORTS:
        from repro import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "RunArtifact",
    "PlatformConfig",
    "EvolutionConfig",
    "TaskSpec",
    "SelfHealingConfig",
    "ExperimentSpec",
    "register_experiment",
    "Registry",
    "UnknownStrategyError",
    "register",
    "get_registry",
    "DRIVERS",
    "SELF_HEALERS",
    "TASKS",
    "EXPERIMENTS",
    "EvolutionSession",
    "canonical_json",
    "content_signature",
    "run_signature",
    # Lazily re-exported from repro.runtime:
    "CampaignSpec",
    "RunSpec",
    "CampaignStore",
    "CampaignResult",
    "CampaignRunError",
    "run_campaign",
    "derive_seed",
    "DedupeCache",
    "EXECUTORS",
    "RUNNERS",
    "register_runner",
]
