"""The :class:`EvolutionSession` façade — one entry point for every consumer.

A session binds a platform (described declaratively or passed in as an
existing object) to an evolution strategy selected by name, and exposes a
single ``evolve(task) -> RunArtifact`` call that bundles results, timing
model, resource report and config provenance into one serialisable
artifact::

    from repro.api import EvolutionSession, EvolutionConfig, PlatformConfig, TaskSpec

    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=1),
        EvolutionConfig(strategy="parallel", n_generations=500, seed=1),
    )
    artifact = session.evolve(TaskSpec(task="salt_pepper_denoise", image_side=64))
    print(artifact.results["overall_best_fitness"])
    artifact.save("run.json")

Sessions are deterministic: the same configs produce byte-identical
results to driving the legacy :mod:`repro.core.evolution` classes by
hand with the same seeds — the batched and population-batched evaluation
paths (``EvolutionConfig.batched`` / ``EvolutionConfig.population_batching``)
are bit-exact against the per-candidate loop, including the per-position
fault-RNG streams.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.api.artifact import RunArtifact
from repro.api.config import EvolutionConfig, PlatformConfig, SelfHealingConfig, TaskSpec
from repro.api.registry import DRIVERS
from repro.core.evolution import PlatformEvolutionResult
from repro.core.platform import EvolvableHardwarePlatform
from repro.imaging.images import ImagePair

__all__ = ["EvolutionSession"]

TaskLike = Union[TaskSpec, ImagePair, Tuple[np.ndarray, np.ndarray]]


class EvolutionSession:
    """Declarative façade over the platform and its evolution drivers.

    Parameters
    ----------
    platform:
        A :class:`~repro.api.config.PlatformConfig` (built lazily on first
        use) or an existing
        :class:`~repro.core.platform.EvolvableHardwarePlatform` to operate
        on.  Defaults to the paper's three-array platform.
    evolution:
        The default :class:`~repro.api.config.EvolutionConfig` used by
        :meth:`evolve` (a per-call override is accepted).

    Examples
    --------
    A complete (tiny) run; results are deterministic in the seeds and
    independent of the evaluation backend:

    >>> from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig, TaskSpec
    >>> session = EvolutionSession(
    ...     PlatformConfig(n_arrays=2, seed=1, backend="numpy"),
    ...     EvolutionConfig(strategy="parallel", n_generations=3, seed=1),
    ... )
    >>> artifact = session.evolve(TaskSpec(task="identity", image_side=8, seed=1))
    >>> artifact.kind
    'evolution-run'
    >>> artifact.results["overall_best_fitness"] < float("inf")
    True
    >>> artifact.config["platform"]["backend"]
    'numpy'
    """

    def __init__(
        self,
        platform: Union[PlatformConfig, EvolvableHardwarePlatform, None] = None,
        evolution: Optional[EvolutionConfig] = None,
    ) -> None:
        if platform is None:
            platform = PlatformConfig()
        if isinstance(platform, EvolvableHardwarePlatform):
            self.platform_config: Optional[PlatformConfig] = None
            self._platform: Optional[EvolvableHardwarePlatform] = platform
        elif isinstance(platform, PlatformConfig):
            self.platform_config = platform
            self._platform = None
        else:
            raise TypeError(
                "platform must be a PlatformConfig or an EvolvableHardwarePlatform, "
                f"got {type(platform)!r}"
            )
        self.evolution = evolution if evolution is not None else EvolutionConfig()
        if not isinstance(self.evolution, EvolutionConfig):
            raise TypeError(f"evolution must be an EvolutionConfig, got {type(evolution)!r}")

    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> EvolvableHardwarePlatform:
        """The underlying platform (built from the config on first access)."""
        if self._platform is None:
            self._platform = self.platform_config.build()
        return self._platform

    def resolve_task(self, task: TaskLike) -> ImagePair:
        """Normalise any accepted task form into an :class:`ImagePair`."""
        if isinstance(task, TaskSpec):
            return task.build()
        if isinstance(task, ImagePair):
            return task
        if isinstance(task, tuple) and len(task) == 2:
            training = np.asarray(task[0])
            reference = np.asarray(task[1])
            return ImagePair(training=training, reference=reference, name="inline")
        raise TypeError(
            "task must be a TaskSpec, an ImagePair or a (training, reference) "
            f"tuple, got {type(task)!r}"
        )

    # ------------------------------------------------------------------ #
    def evolve(
        self,
        task: TaskLike,
        evolution: Optional[EvolutionConfig] = None,
        **runtime: Any,
    ) -> RunArtifact:
        """Run the configured evolution strategy on ``task``.

        Parameters
        ----------
        task:
            A declarative :class:`TaskSpec`, a prebuilt
            :class:`~repro.imaging.images.ImagePair`, or a raw
            ``(training, reference)`` tuple.
        evolution:
            Optional per-call override of the session's evolution config.
        **runtime:
            Strategy-specific, non-serialisable inputs forwarded to the
            driver (``seed_genotype``/``seed_genotypes``, ``tasks``,
            ``apprentice``/``master``, ``seed_from_master``, ...).

        Returns
        -------
        RunArtifact
            Serialisable bundle of results, timing, resources and config
            provenance; the in-memory
            :class:`~repro.core.evolution.PlatformEvolutionResult` is
            attached as ``artifact.raw``.
        """
        config = evolution if evolution is not None else self.evolution
        entry = DRIVERS.get(config.strategy)
        strategy = entry() if isinstance(entry, type) else entry
        accepted = getattr(strategy, "runtime_keys", None)
        if accepted is not None:
            unknown = set(runtime) - set(accepted)
            if unknown:
                raise TypeError(
                    f"strategy {config.strategy!r} does not accept runtime "
                    f"option(s): {', '.join(sorted(unknown))}; accepted: "
                    f"{', '.join(sorted(accepted)) or '(none)'}"
                )
        accepted_options = getattr(strategy, "option_keys", None)
        if accepted_options is not None:
            unknown = set(config.options) - set(accepted_options)
            if unknown:
                raise ValueError(
                    f"strategy {config.strategy!r} does not accept config "
                    f"option(s): {', '.join(sorted(unknown))}; accepted: "
                    f"{', '.join(sorted(accepted_options)) or '(none)'}"
                )
        pair = self.resolve_task(task)

        platform = self.platform
        driver = strategy.build(platform, config)
        result = strategy.run(driver, pair, config, **runtime)
        return self._wrap(result, config, task, pair)

    def heal(
        self,
        healing: SelfHealingConfig,
        calibration_image: np.ndarray,
        calibration_reference: np.ndarray,
    ):
        """Build the configured self-healing strategy bound to this platform."""
        return healing.build(self.platform, calibration_image, calibration_reference)

    # ------------------------------------------------------------------ #
    def _wrap(
        self,
        result: PlatformEvolutionResult,
        config: EvolutionConfig,
        task: TaskLike,
        pair: ImagePair,
    ) -> RunArtifact:
        platform = self.platform
        timing_model = platform.timing_model()
        report = platform.resource_report()
        artifact = RunArtifact(
            kind="evolution-run",
            config={
                "platform": (
                    self.platform_config.to_dict()
                    if self.platform_config is not None
                    else {"n_arrays": platform.n_arrays, "external": True}
                ),
                "evolution": config.to_dict(),
                "task": task.to_dict() if isinstance(task, TaskSpec) else {"name": pair.name},
            },
            results={
                "best_fitness": {
                    str(index): value for index, value in sorted(result.best_fitness.items())
                },
                "overall_best_fitness": result.overall_best_fitness(),
                "fitness_history": {
                    str(index): list(history)
                    for index, history in sorted(result.fitness_history.items())
                },
                "best_genotypes": {
                    str(index): genotype.to_flat().tolist()
                    for index, genotype in sorted(result.best_genotypes.items())
                },
                "n_generations": result.n_generations,
                "n_evaluations": result.n_evaluations,
                "n_reconfigurations": result.n_reconfigurations,
                **(
                    {
                        "scenario": {
                            "spec": (
                                config.scenario
                                if isinstance(config.scenario, str)
                                else dict(config.scenario)
                            ),
                            "n_events": len(result.scenario_events),
                            "events": list(result.scenario_events),
                        }
                    }
                    if config.scenario is not None
                    else {}
                ),
            },
            timing={
                "platform_time_s": result.platform_time_s,
                "pe_reconfiguration_time_s": timing_model.pe_reconfiguration_time_s,
                "pixel_clock_hz": timing_model.pixel_clock_hz,
                "array_latency_cycles": timing_model.array_latency_cycles,
            },
            resources={
                "n_arrays": report.n_arrays,
                "total_slices": report.total_slices,
                "total_ffs": report.total_ffs,
                "total_luts": report.total_luts,
                "array_clbs": report.array_clbs,
                "pe_reconfiguration_time_us": report.pe_reconfiguration_time_us,
                "slice_utilisation": report.slice_utilisation,
            },
            raw=result,
        )
        return artifact
