"""The serialisable result bundle returned by the Session API.

A :class:`RunArtifact` packages everything a caller, a CI job or a future
service layer needs from one run: the structured results, the timing and
resource accounting, and the *configs that produced them* — so any
artifact can be traced back to (and re-run from) its exact inputs.

Artifacts round-trip losslessly through JSON (``raw`` excluded):

>>> from repro.api import RunArtifact
>>> artifact = RunArtifact(kind="demo", results={"best": 42.0})
>>> artifact.provenance["schema_version"]
1
>>> restored = RunArtifact.from_json(artifact.to_json())
>>> restored.kind, restored.results["best"]
('demo', 42.0)
>>> restored == artifact
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["RunArtifact"]

#: Version of the artifact wire format, bumped on breaking layout changes.
ARTIFACT_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and mappings to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, float) and not np.isfinite(value):
        # JSON has no Infinity/NaN; store as string so round trips stay valid.
        return repr(value)
    return value


@dataclass
class RunArtifact:
    """Self-describing, JSON-serialisable outcome of one API run.

    Attributes
    ----------
    kind:
        What produced this artifact (``evolution-run`` for
        :meth:`~repro.api.session.EvolutionSession.evolve`, or the
        experiment name for CLI experiment runs).
    config:
        The declarative configs that produced the run, as plain dicts
        (platform/evolution/task/CLI arguments as applicable).
    results:
        The structured payload: per-array fitness, histories, experiment
        rows — whatever the producer reports.
    timing:
        Platform-time accounting (modelled hardware time, not Python time).
    resources:
        Optional §VI.A resource-utilisation snapshot of the platform.
    provenance:
        Library version, schema version and free-form producer notes.
    raw:
        The in-memory result object (e.g. a
        :class:`~repro.core.evolution.PlatformEvolutionResult`) for
        programmatic callers; never serialised.
    """

    kind: str
    config: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Any] = field(default_factory=dict)
    resources: Optional[Dict[str, Any]] = None
    provenance: Dict[str, Any] = field(default_factory=dict)
    raw: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("artifact kind must be a non-empty string")
        self.provenance.setdefault("schema_version", ARTIFACT_SCHEMA_VERSION)
        if "library_version" not in self.provenance:
            from repro import __version__

            self.provenance["library_version"] = __version__

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (numpy values converted; ``raw`` excluded)."""
        payload = {
            "kind": self.kind,
            "config": self.config,
            "results": self.results,
            "timing": self.timing,
            "resources": self.resources,
            "provenance": self.provenance,
        }
        return _jsonable(payload)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON view of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the artifact as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunArtifact":
        """Rebuild an artifact from :meth:`to_dict` output."""
        return cls(
            kind=data["kind"],
            config=dict(data.get("config") or {}),
            results=dict(data.get("results") or {}),
            timing=dict(data.get("timing") or {}),
            resources=data.get("resources"),
            provenance=dict(data.get("provenance") or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
