"""Operation and evolution modes of the multi-array platform.

The flexibility of the architecture comes from being able to change, at run
time, both what is configured *inside* each array (through DPR) and how the
arrays are connected *to each other* (through the ACB control registers).
The paper organises that flexibility into processing modes (§IV.A, Fig. 4)
and evolution modes (§IV.B, Figs. 5–7); this module gives each of them a
first-class name used consistently across the platform, the evolution
drivers and the self-healing strategies.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "ProcessingMode",
    "CascadeStyle",
    "EvolutionMode",
    "CascadeFitnessMode",
    "CascadeSchedule",
    "FitnessSource",
]


class ProcessingMode(Enum):
    """Mission-time arrangement of the processing arrays (Fig. 4)."""

    CASCADED = "cascaded"
    """The output of each array feeds, through a 3-line FIFO that rebuilds
    the 3x3 window, the input of the next array."""

    BYPASS = "bypass"
    """A cascade in which one or more stages are disconnected and replaced
    by a direct connection between their input and output; the bypassed
    array still receives the input stream (so it can be re-evolved online)."""

    PARALLEL = "parallel"
    """All arrays receive the same input simultaneously; with three arrays
    this supports Triple Modular Redundancy."""

    INDEPENDENT = "independent"
    """Each array processes its own input stream with its own circuit."""


class CascadeStyle(Enum):
    """Functional flavour of the cascaded processing mode (§IV.A)."""

    COLLABORATIVE = "collaborative"
    """All stages pursue a common target (e.g. the zero-noise reference);
    each stage specialises on the residual error of the previous one."""

    INDEPENDENT = "independent"
    """Each stage performs a different task (e.g. denoise, then smooth,
    then detect edges), evolved against different references."""


class EvolutionMode(Enum):
    """How candidates are distributed and judged during adaptation (§IV.B)."""

    INDEPENDENT = "independent"
    """Each array evolves on its own, sequentially, with its own reference."""

    PARALLEL = "parallel"
    """The offspring of each generation are spread across the arrays so that
    several fitness values are computed simultaneously (Fig. 5)."""

    CASCADED = "cascaded"
    """Arrays are evolved considering the rest of the processing chain
    (Fig. 6); see :class:`CascadeFitnessMode` and :class:`CascadeSchedule`."""

    IMITATION = "imitation"
    """A bypassed array evolves to minimise the MAE between its output and a
    neighbouring array's output — no reference image required (Fig. 7)."""


class CascadeFitnessMode(Enum):
    """Fitness arrangement used by cascaded evolution (Fig. 6)."""

    SEPARATE = "separate"
    """Each stage has its own fitness unit; all stages use the same
    reference image, and stage *i+1* is fed with stage *i*'s output."""

    MERGED = "merged"
    """A single fitness unit at the end of the chain judges all candidates
    jointly."""


class CascadeSchedule(Enum):
    """Temporal interleaving of cascaded evolution (§IV.B)."""

    SEQUENTIAL = "sequential"
    """Stage *i+1* starts evolving only after stage *i* has finished."""

    INTERLEAVED = "interleaved"
    """All stages advance one generation at a time, round-robin
    ("simultaneous or interleaved cascaded evolution")."""


class FitnessSource(Enum):
    """What an ACB's fitness unit compares its array output against (§III.B).

    "The fitness computation block may compute the pixel aggregated MAE
    between the reference image and the output image of the array, but it
    may also be set to calculate MAE between the input and output images of
    the array, as well as MAE between the output and another output from an
    adjacent array."
    """

    REFERENCE = "reference"        #: output vs stored reference image
    INPUT = "input"                #: output vs the array's own input
    NEIGHBOUR = "neighbour"        #: output vs an adjacent array's output
