"""Platform-level evolution drivers.

The paper distinguishes four evolution modes (§IV.B): Independent, Parallel,
Cascaded (with separate or merged fitness, sequential or interleaved
scheduling) and Evolution by Imitation.  Each mode is a driver class here;
all of them share the same building blocks:

* candidates are (1+λ)-style offspring of a per-array parent chromosome,
  produced by the mutation operator of :mod:`repro.ea.mutation`;
* the *reconfiguration cost* of placing a candidate on an array is the
  number of PE positions whose function gene differs from what is currently
  configured on that array — exactly what the shared reconfiguration engine
  would have to rewrite;
* placement order and parallel evaluation follow the Fig. 11 schedule, and
  the platform time of the run is accounted by a
  :class:`~repro.core.scheduler.GenerationScheduler`;
* evaluation happens on the ACB's own array model, so PE-level faults
  present in the FPGA fabric affect the fitness of every candidate — which
  is what gives the platform its inherent self-healing behaviour.

For efficiency the drivers do not write every candidate into the
configuration-memory model (that would copy megabytes of frame data per
generation for no behavioural gain); they track the *function genes
currently placed* on each array to compute exact reconfiguration counts,
and commit only the finally selected circuits to the fabric through the
ACB's :meth:`~repro.core.acb.ArrayControlBlock.configure`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.array.genotype import Genotype
from repro.array.window import extract_windows
from repro.backends.fitness_cache import PersistentFitnessCache
from repro.core.modes import CascadeFitnessMode, CascadeSchedule
from repro.core.platform import EvolvableHardwarePlatform
from repro.core.scheduler import GenerationScheduler
from repro.ea.mutation import MutationResult, mutate, mutate_population
from repro.ea.pipeline import FitnessPipeline, resolve_persistent_cache
from repro.imaging.metrics import sae, sae_batch
from repro.timing.model import EvolutionTimingModel

__all__ = [
    "PlatformEvolutionResult",
    "ArrayEvalContext",
    "EvolutionDriver",
    "IndependentEvolution",
    "ParallelEvolution",
    "CascadedEvolution",
    "ImitationEvolution",
    "evaluate_batch",
]


@dataclass
class PlatformEvolutionResult:
    """Outcome of a platform-level evolution run.

    Attributes
    ----------
    best_genotypes:
        Best circuit found for each participating array.
    best_fitness:
        Fitness of each best circuit.
    fitness_history:
        Per-array parent-fitness trace, one value per generation.
    platform_time_s:
        Estimated platform (hardware) time of the run under the Fig. 11
        schedule — *not* Python wall-clock time.
    n_generations, n_evaluations, n_reconfigurations:
        Run totals.
    """

    best_genotypes: Dict[int, Genotype] = field(default_factory=dict)
    best_fitness: Dict[int, float] = field(default_factory=dict)
    fitness_history: Dict[int, List[float]] = field(default_factory=dict)
    platform_time_s: float = 0.0
    n_generations: int = 0
    n_evaluations: int = 0
    n_reconfigurations: int = 0
    #: Applied fault-scenario events (one serialisable record each), in
    #: application order; empty when the run had no scenario attached.
    scenario_events: List[Dict] = field(default_factory=list)
    #: Fitness-pipeline telemetry summed over the run's evaluation
    #: contexts: cache ``hits``/``misses``, fault-taint ``bypasses``,
    #: persistent-tier ``persistent_hits``/``persistent_misses``, and the
    #: ``full_evaluations``/``partial_evaluations``/``racing_rejected``
    #: racing counters (see :class:`repro.ea.pipeline.FitnessPipeline`).
    #: Not part of the cross-engine parity contract — the engines batch
    #: candidates onto contexts differently, so per-run counter totals may
    #: legitimately differ while every fitness value stays byte-identical.
    fitness_cache_stats: Dict[str, int] = field(default_factory=dict)

    def overall_best_fitness(self) -> float:
        """Best fitness across all participating arrays."""
        if not self.best_fitness:
            return math.inf
        return min(self.best_fitness.values())

    def trace(self, array_index: int) -> np.ndarray:
        """Fitness trace of one array as a float array."""
        return np.asarray(self.fitness_history.get(array_index, []), dtype=np.float64)


class ArrayEvalContext:
    """Cached evaluation context for one array and one training image.

    Extracts the window planes of the training image once and tracks the
    function genes currently placed on the array, so candidate evaluation
    and reconfiguration accounting are both cheap.  This is the handle
    :func:`evaluate_batch` scores candidates through.

    Every fitness request delegates to a staged
    :class:`~repro.ea.pipeline.FitnessPipeline` — the in-process cache
    tier (the successor of the pre-1.9 genotype-keyed memo of the
    population path, now shared by the sequential and batched paths too),
    the opt-in persistent tier and the opt-in racing stage.  On a faulty
    array the pipeline bypasses every cache so each candidate consumes its
    per-position fault draws, keeping runs byte-identical to uncached
    evaluation; the bypasses are counted, not silent (see
    :attr:`PlatformEvolutionResult.fitness_cache_stats`).
    """

    def __init__(self, platform: EvolvableHardwarePlatform, array_index: int,
                 training_image: np.ndarray, *,
                 fitness_cache: Union[None, str, os.PathLike, PersistentFitnessCache] = None,
                 racing: bool = False) -> None:
        self.platform = platform
        self.array_index = array_index
        self.acb = platform.acb(array_index)
        self.training_image = np.asarray(training_image)
        self.planes = extract_windows(self.training_image)
        # Function genes currently placed on the array's fabric regions.
        self.placed_functions = platform.fabric.configured_genes(array_index).astype(np.int16)
        self.pipeline = FitnessPipeline(
            self.acb.array, persistent=fitness_cache, racing=racing
        )
        self.acb.sync_faults()

    def retarget(self, training_image: np.ndarray) -> None:
        """Switch the training image (cascaded evolution stages)."""
        self.training_image = np.asarray(training_image)
        self.planes = extract_windows(self.training_image)
        # Cached fitnesses were computed on the previous planes.
        self.pipeline.invalidate()

    def reconfiguration_count(self, genotype: Genotype) -> int:
        """PE writes needed to place ``genotype`` given what is on the array."""
        wanted = genotype.function_genes.astype(np.int16)
        return int(np.count_nonzero(wanted != self.placed_functions))

    def place(self, genotype: Genotype) -> int:
        """Account the placement of ``genotype`` and return its PE-write count."""
        count = self.reconfiguration_count(genotype)
        self.placed_functions = genotype.function_genes.astype(np.int16)
        return count

    def place_population(self, genotypes: Sequence[Genotype]) -> List[int]:
        """Account placing ``genotypes`` in order; returns each PE-write count.

        One vectorised pass over the stacked function genes, identical to
        calling :meth:`place` candidate by candidate (each candidate is
        diffed against its predecessor on this array).
        """
        if not genotypes:
            return []
        rows, cols = self.placed_functions.shape
        stack = np.empty((len(genotypes) + 1, rows, cols), dtype=np.int16)
        stack[0] = self.placed_functions
        for index, genotype in enumerate(genotypes):
            stack[index + 1] = genotype.function_genes
        counts = np.count_nonzero(stack[1:] != stack[:-1], axis=(1, 2))
        self.placed_functions = stack[-1]
        return counts.tolist()

    def output(self, genotype: Genotype) -> np.ndarray:
        """Array output for ``genotype`` on the cached training image."""
        return self.acb.array.process_planes(self.planes, genotype)

    def outputs_batch(self, genotypes: Sequence[Genotype]) -> np.ndarray:
        """Array outputs for a batch of candidates, as one ``(B, H, W)`` pass."""
        return self.acb.array.process_planes_batch(self.planes, genotypes)

    def fitness(self, genotype: Genotype, reference: np.ndarray) -> float:
        """Aggregated MAE of the candidate against ``reference``."""
        return self.pipeline.evaluate(self.planes, genotype, reference)

    def fitness_batch(self, genotypes: Sequence[Genotype], reference: np.ndarray) -> List[float]:
        """Aggregated MAE of each candidate against ``reference`` (one fused pass)."""
        return self.pipeline.evaluate_population(self.planes, genotypes, reference)

    def fitness_population(
        self,
        genotypes: Sequence[Genotype],
        reference: np.ndarray,
        threshold: Optional[float] = None,
    ) -> List[float]:
        """Aggregated MAE per candidate through the staged pipeline.

        The fused path of the population-batched engine: fitness values come
        out of the pipeline's backing
        :meth:`~repro.array.systolic_array.SystolicArray.evaluate_population`
        call, short-circuited by the cache tiers where the exact value is
        already known.  ``threshold`` is the racing acceptance bar (the
        caller's parent fitness); it only has an effect when the pipeline
        was built with racing enabled.
        """
        return self.pipeline.evaluate_population(
            self.planes, genotypes, reference, threshold=threshold
        )


def evaluate_batch(
    context: "ArrayEvalContext",
    genotypes: Sequence[Genotype],
    reference: np.ndarray,
) -> List[float]:
    """Score a whole offspring batch through one windowed NumPy pass.

    This is the platform's vectorised evaluation hot path: the λ offspring of
    a generation advance through the systolic sweep together (see
    :meth:`repro.array.systolic_array.SystolicArray.process_planes_batch`)
    and their aggregated-MAE fitnesses are reduced in a single vector
    operation.  The returned values are bit-identical to calling
    ``context.fitness`` candidate by candidate — the drivers rely on this to
    keep batched runs byte-reproducible against the sequential path.

    Parameters
    ----------
    context:
        Cached evaluation context of the target array.
    genotypes:
        The candidate circuits to score.
    reference:
        Reference image the fitness unit compares against.

    Returns
    -------
    list of float
        Aggregated MAE per candidate, in input order.
    """
    outputs = context.outputs_batch(genotypes)
    errors = sae_batch(outputs, reference)
    return [float(error) for error in errors]


#: Deprecated pre-1.1 name of :class:`ArrayEvalContext`.
_ArrayEvalContext = ArrayEvalContext


class EvolutionDriver:
    """Shared machinery of all platform evolution modes.

    Parameters
    ----------
    platform:
        The multi-array platform to evolve on.
    n_offspring:
        Offspring per generation (the paper's multi-array experiments use 9).
    mutation_rate:
        Mutation rate ``k``: genes changed per offspring.
    rng:
        Seed or generator for the mutation operator.
    timing_model:
        Evolution-time model; defaults to one calibrated to the platform's
        reconfiguration engine.
    accept_equal:
        Whether equal-fitness offspring replace the parent (CGP neutral drift).
    batched:
        When ``True`` the λ offspring of each generation are scored through
        the vectorised :func:`evaluate_batch` pass instead of one Python
        evaluation per candidate.  Results are byte-identical either way;
        batching only changes the wall-clock cost of the simulation.
    population_batching:
        When ``True`` the whole generation step runs population-batched:
        offspring are constructed through
        :func:`~repro.ea.mutation.mutate_population`, placement accounting
        is one vectorised diff per array, and fitness comes from the
        evaluation backend's fused
        :meth:`~repro.backends.base.EvaluationBackend.evaluate_population`
        entry point (with a genotype-keyed fitness cache on fault-free
        arrays).  Takes precedence over ``batched``.  Results are
        byte-identical to the per-candidate path — same RNG streams, same
        fault draws — as enforced by ``tests/core/test_population_parity.py``.
    fitness_cache:
        Opt-in persistent cross-run fitness cache: ``None`` (off, the
        default), a directory path, or a shared
        :class:`~repro.backends.fitness_cache.PersistentFitnessCache`.
        Keys bind the gene bytes to the array geometry and the content
        digests of the training planes and reference image
        (:func:`repro.backends.signature.fitness_key`), so entries are
        value-transparent across runs, workers and backends; fault-tainted
        evaluations never touch the cache.  With the knob off, behaviour
        is byte-identical to v1.8.0.
    racing:
        Opt-in exact-bound racing early rejection (see
        :mod:`repro.ea.pipeline`): offspring on fault-free arrays are
        evaluated over a deterministic row partition and dropped as soon
        as their partial SAE provably exceeds the parent's fitness.
        Selection, acceptance and the per-generation parent trajectory
        are bit-identical to exhaustive evaluation; only the wall-clock
        cost (and the reported lower bounds of hopeless candidates)
        changes.  Off by default.
    scenario:
        Optional fault-scenario timeline: a
        :class:`~repro.scenarios.spec.FaultScenario`, a registered
        scenario name (``"seu-storm"``, ...) or its dict form.  When set,
        the scenario is compiled into a deterministic per-generation
        event schedule from the platform's fabric seed (see
        :func:`repro.scenarios.compile_schedule`), and its events —
        Poisson SEU arrivals, bursts, permanent-damage onsets, periodic
        scrubs — fire at the *start* of each generation, mid-evolution,
        before that generation's offspring are drawn.  Mid-run injection
        is byte-identical across evaluation backends and executors for a
        fixed seed (``tests/scenarios/`` enforces this); every applied
        event is recorded on
        :attr:`PlatformEvolutionResult.scenario_events`.

        Like the paper's hardware, the EA only knows fitnesses it has
        *measured*: when an event changes the fault environment, the
        incumbent parent's stored fitness is not retroactively
        re-evaluated — offspring of the next generation are measured
        under the new environment and compete against the parent's
        last-measured value (so ``target_fitness`` early stops and the
        reported ``best_fitness`` refer to the environment each value
        was measured in).  Detecting that a previously good circuit has
        degraded is deliberately not the EA's job; that is the §V.A
        calibration/monitoring loop, reproduced by the
        ``scenario-sweep`` experiment's lifecycle runner.
    """

    def __init__(
        self,
        platform: EvolvableHardwarePlatform,
        n_offspring: int = 9,
        mutation_rate: int = 3,
        rng: Union[int, np.random.Generator, None] = None,
        timing_model: Optional[EvolutionTimingModel] = None,
        accept_equal: bool = True,
        batched: bool = False,
        population_batching: bool = False,
        fitness_cache: Union[None, str, os.PathLike, PersistentFitnessCache] = None,
        racing: bool = False,
        scenario=None,
    ) -> None:
        if n_offspring < 1:
            raise ValueError("n_offspring must be >= 1")
        if mutation_rate < 1:
            raise ValueError("mutation_rate must be >= 1")
        self.platform = platform
        self.n_offspring = n_offspring
        self.mutation_rate = mutation_rate
        self.accept_equal = accept_equal
        self.batched = bool(batched)
        self.population_batching = bool(population_batching)
        # One persistent-tier handle shared by every context this driver
        # creates, so concurrent lookups share a single in-memory view.
        self.fitness_cache = resolve_persistent_cache(fitness_cache)
        self.racing = bool(racing)
        if scenario is not None:
            from repro.scenarios import resolve_scenario

            scenario = resolve_scenario(scenario)
        self.scenario = scenario
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.timing_model = timing_model if timing_model is not None else platform.timing_model()

    # ------------------------------------------------------------------ #
    def _context(self, array_index: int, training_image: np.ndarray) -> ArrayEvalContext:
        """An evaluation context wired to this driver's pipeline knobs."""
        return ArrayEvalContext(
            self.platform,
            array_index,
            training_image,
            fitness_cache=self.fitness_cache,
            racing=self.racing,
        )

    @staticmethod
    def _collect_cache_stats(
        result: PlatformEvolutionResult, contexts: Sequence[ArrayEvalContext]
    ) -> None:
        """Sum per-context pipeline telemetry onto the run result."""
        totals: Dict[str, int] = {}
        for context in contexts:
            for key, value in context.pipeline.stats().items():
                totals[key] = totals.get(key, 0) + value
        result.fitness_cache_stats = totals

    def _make_scheduler(self, n_arrays: int, n_pixels: int) -> GenerationScheduler:
        return GenerationScheduler(
            timing_model=self.timing_model, n_arrays=n_arrays, n_pixels=n_pixels
        )

    def _begin_scenario(self, horizon: int):
        """Compile the attached scenario (if any) into a bound runner.

        ``horizon`` is the total number of generation steps the run may
        take; it depends only on the run's configuration (never on early
        stops), so the compiled schedule — and therefore every event —
        is a pure function of the configs and the platform seed.
        """
        if self.scenario is None:
            return None
        from repro.scenarios import ScenarioRunner, compile_schedule

        geometry = self.platform.geometry
        schedule = compile_schedule(
            self.scenario,
            n_generations=horizon,
            n_arrays=self.platform.n_arrays,
            rows=geometry.rows,
            cols=geometry.cols,
            seed=self.platform.fabric.seed,
        )
        return ScenarioRunner(self.platform, schedule)

    @staticmethod
    def _advance_scenario(runner, result: PlatformEvolutionResult) -> None:
        """Fire the next generation's scheduled events, if a scenario runs."""
        if runner is not None:
            result.scenario_events.extend(runner.advance())

    def _initial_parent(self, seed_genotype: Optional[Genotype]) -> Genotype:
        if seed_genotype is not None:
            return seed_genotype.copy()
        return Genotype.random(self.platform.spec, self.rng)

    def _accept(self, child_fitness: float, parent_fitness: float) -> bool:
        if child_fitness < parent_fitness:
            return True
        return self.accept_equal and child_fitness == parent_fitness

    def _offspring_mutations(self, parent: Genotype) -> List[MutationResult]:
        """One generation of offspring, population-batched when enabled.

        Both paths draw identically from ``self.rng`` and return identical
        mutation results; the population path only removes per-call Python
        overhead.
        """
        if self.population_batching:
            return mutate_population(parent, self.mutation_rate, self.rng, self.n_offspring)
        return [mutate(parent, self.mutation_rate, self.rng) for _ in range(self.n_offspring)]

    def _place_offspring(
        self, context: ArrayEvalContext, mutations: Sequence[MutationResult]
    ) -> List[int]:
        """Placement accounting for one array's offspring, in order."""
        if self.population_batching:
            return context.place_population([m.genotype for m in mutations])
        return [context.place(m.genotype) for m in mutations]

    def _evaluate_offspring(
        self,
        context: ArrayEvalContext,
        genotypes: Sequence[Genotype],
        reference: np.ndarray,
        threshold: Optional[float] = None,
    ) -> List[float]:
        """Fitness of each offspring on one array: population, batched or sequential.

        ``threshold`` is the racing acceptance bar — the caller's current
        parent fitness.  On a racing-enabled driver every offspring path
        may race: the fused population path under the explicit threshold,
        the batched path under the pipeline's own best-seen threshold, and
        the sequential loop candidate by candidate (racing composes with
        ``population_batching`` off).  Only reporting-grade calls
        (``context.fitness``) always run in full.
        """
        if self.population_batching and genotypes:
            return context.fitness_population(genotypes, reference, threshold=threshold)
        if self.batched and len(genotypes) > 1:
            return context.fitness_batch(genotypes, reference)
        if self.racing:
            return [
                context.fitness_population([genotype], reference, threshold=threshold)[0]
                for genotype in genotypes
            ]
        return [context.fitness(genotype, reference) for genotype in genotypes]

    @staticmethod
    def _best_offspring(
        mutations: Sequence[MutationResult], fitnesses: Sequence[float]
    ) -> Tuple[Optional[Genotype], float]:
        """First strictly-best offspring, matching the sequential selection order."""
        best_child: Optional[Genotype] = None
        best_child_fitness = math.inf
        for mutation, fitness in zip(mutations, fitnesses):
            if fitness < best_child_fitness:
                best_child, best_child_fitness = mutation.genotype, fitness
        return best_child, best_child_fitness


class IndependentEvolution(EvolutionDriver):
    """Independent evolution mode: each array evolves sequentially on its own task.

    "Each array is evolved with its own reference, which allows adjusting
    them to different processing tasks. ... All arrays need to be evolved in
    a sequential manner." (§IV.B)
    """

    def run(
        self,
        tasks: Dict[int, Tuple[np.ndarray, np.ndarray]],
        n_generations: int,
        seed_genotypes: Optional[Dict[int, Genotype]] = None,
        target_fitness: Optional[float] = None,
    ) -> PlatformEvolutionResult:
        """Evolve each array in ``tasks`` one after the other.

        Parameters
        ----------
        tasks:
            ``{array_index: (training_image, reference_image)}``.
        n_generations:
            Generation budget *per array*.
        seed_genotypes:
            Optional starting parent per array.
        target_fitness:
            Optional early-stop threshold applied per array.
        """
        if not tasks:
            raise ValueError("tasks must name at least one array")
        seed_genotypes = seed_genotypes or {}
        result = PlatformEvolutionResult()
        # One platform-global timeline: arrays evolve sequentially, so the
        # scenario advances one step per generation across the whole run.
        scenario_runner = self._begin_scenario(n_generations * len(tasks))

        contexts: List[ArrayEvalContext] = []
        for array_index, (training, reference) in sorted(tasks.items()):
            context = self._context(array_index, training)
            contexts.append(context)
            reference = np.asarray(reference)
            scheduler = self._make_scheduler(n_arrays=1, n_pixels=int(np.asarray(training).size))

            parent = self._initial_parent(seed_genotypes.get(array_index))
            parent_fitness = context.fitness(parent, reference)
            result.n_evaluations += 1
            history: List[float] = []

            for _ in range(n_generations):
                self._advance_scenario(scenario_runner, result)
                mutations = self._offspring_mutations(parent)
                offspring_counts = self._place_offspring(context, mutations)
                fitnesses = self._evaluate_offspring(
                    context, [m.genotype for m in mutations], reference,
                    threshold=parent_fitness,
                )
                result.n_evaluations += len(mutations)
                best_child, best_child_fitness = self._best_offspring(mutations, fitnesses)
                scheduler.record_generation(offspring_counts)
                if best_child is not None and self._accept(best_child_fitness, parent_fitness):
                    parent, parent_fitness = best_child, best_child_fitness
                history.append(parent_fitness)
                if target_fitness is not None and parent_fitness <= target_fitness:
                    break

            self.platform.configure_array(array_index, parent)
            self.platform.set_reference(array_index, reference)
            result.best_genotypes[array_index] = parent
            result.best_fitness[array_index] = parent_fitness
            result.fitness_history[array_index] = history
            result.platform_time_s += scheduler.total_time_s
            result.n_reconfigurations += scheduler.total_reconfigurations
            result.n_generations = max(result.n_generations, scheduler.n_generations)
        self._collect_cache_stats(result, contexts)
        return result


class ParallelEvolution(EvolutionDriver):
    """Parallel evolution mode: one task, offspring distributed over the arrays.

    "Parallel evolution is based on the distribution of the offspring
    generated during each generation of the evolution phase among the
    different processing arrays, in order to reduce the time required to
    obtain a suitable solution." (§IV.B, Fig. 5)

    The classic variant mutates every offspring from the generation's
    parent with the nominal mutation rate; the paper's new two-level
    strategy is implemented by :class:`repro.core.two_level_ea.TwoLevelMutationEvolution`.
    """

    def __init__(self, *args, n_arrays: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_arrays = n_arrays if n_arrays is not None else self.platform.n_arrays
        if not 1 <= self.n_arrays <= self.platform.n_arrays:
            raise ValueError(
                f"n_arrays must be in [1, {self.platform.n_arrays}], got {self.n_arrays}"
            )

    def _generation_offspring(
        self, parent: Genotype, contexts: List[ArrayEvalContext]
    ) -> List[Tuple[int, MutationResult]]:
        """Produce the generation's offspring as (array_slot, mutation) pairs.

        The classic EA mutates every offspring directly from the parent with
        the nominal mutation rate; offspring are assigned to arrays
        round-robin in batches of ``n_arrays``.
        """
        mutations = self._offspring_mutations(parent)
        return [(position % self.n_arrays, mutation) for position, mutation in enumerate(mutations)]

    def _place_plan(
        self,
        contexts: List[ArrayEvalContext],
        plan: Sequence[Tuple[int, MutationResult]],
    ) -> List[int]:
        """Placement accounting for a whole offspring plan, in plan order.

        With population batching, each array diffs its share of the plan in
        one vectorised pass; candidates keep their plan-order position and
        each array sees its candidates in the same order as sequential
        placement, so the counts are identical.
        """
        if not self.population_batching:
            return [contexts[slot].place(mutation.genotype) for slot, mutation in plan]
        return self._per_slot(
            plan, lambda slot, genotypes: contexts[slot].place_population(genotypes)
        )

    @staticmethod
    def _per_slot(plan, fn) -> List:
        """Apply ``fn(slot, genotypes)`` per array slot, in plan order.

        Each slot sees its candidates in plan order (matching sequential
        per-candidate processing on that array), and the per-slot results
        are scattered back into plan-order positions.
        """
        values: List = [None] * len(plan)
        per_slot: Dict[int, List[int]] = {}
        for index, (slot, _) in enumerate(plan):
            per_slot.setdefault(slot, []).append(index)
        for slot, indices in per_slot.items():
            results = fn(slot, [plan[index][1].genotype for index in indices])
            for index, value in zip(indices, results):
                values[index] = value
        return values

    def _evaluate_plan(
        self,
        contexts: List[ArrayEvalContext],
        plan: Sequence[Tuple[int, MutationResult]],
        reference: np.ndarray,
        threshold: Optional[float] = None,
    ) -> List[float]:
        """Fitness of every planned offspring, in plan order.

        With batching (or population batching) enabled, each array scores
        its share of the plan in one vectorised pass; candidates keep their
        plan-order position so selection (and each array's fault-RNG
        stream) matches the sequential path exactly.  ``threshold`` is the
        racing acceptance bar forwarded to the population path.
        """
        population = self.population_batching and bool(plan)
        if population or (self.batched and len(plan) > 1):
            if all(context.acb.array.n_faults == 0 for context in contexts):
                # Healthy arrays are functionally identical and fault-free
                # evaluation consumes no RNG, so the whole generation can be
                # scored as one batch without perturbing any random stream.
                genotypes = [mutation.genotype for _, mutation in plan]
                if population:
                    return contexts[0].fitness_population(
                        genotypes, reference, threshold=threshold
                    )
                return contexts[0].fitness_batch(genotypes, reference)

            def score(slot: int, genotypes: List[Genotype]) -> List[float]:
                if population:
                    return contexts[slot].fitness_population(
                        genotypes, reference, threshold=threshold
                    )
                return contexts[slot].fitness_batch(genotypes, reference)

            return self._per_slot(plan, score)
        if self.racing:
            # Sequential path with racing: each offspring still runs through
            # the pipeline's population entry so the early-rejection bound
            # applies candidate by candidate.
            return [
                contexts[slot].fitness_population(
                    [mutation.genotype], reference, threshold=threshold
                )[0]
                for slot, mutation in plan
            ]
        return [
            contexts[slot].fitness(mutation.genotype, reference)
            for slot, mutation in plan
        ]

    def run(
        self,
        training_image: np.ndarray,
        reference_image: np.ndarray,
        n_generations: int,
        seed_genotype: Optional[Genotype] = None,
        target_fitness: Optional[float] = None,
    ) -> PlatformEvolutionResult:
        """Evolve one circuit using ``n_arrays`` arrays for parallel evaluation."""
        training_image = np.asarray(training_image)
        reference_image = np.asarray(reference_image)
        contexts = [
            self._context(index, training_image) for index in range(self.n_arrays)
        ]
        scheduler = self._make_scheduler(
            n_arrays=self.n_arrays, n_pixels=int(training_image.size)
        )
        result = PlatformEvolutionResult()
        scenario_runner = self._begin_scenario(n_generations)

        parent = self._initial_parent(seed_genotype)
        parent_fitness = contexts[0].fitness(parent, reference_image)
        result.n_evaluations += 1
        history: List[float] = []

        for _ in range(n_generations):
            self._advance_scenario(scenario_runner, result)
            plan = self._generation_offspring(parent, contexts)
            offspring_counts = self._place_plan(contexts, plan)
            fitnesses = self._evaluate_plan(
                contexts, plan, reference_image, threshold=parent_fitness
            )
            result.n_evaluations += len(plan)
            best_child, best_child_fitness = self._best_offspring(
                [mutation for _, mutation in plan], fitnesses
            )
            scheduler.record_generation(offspring_counts)
            if best_child is not None and self._accept(best_child_fitness, parent_fitness):
                parent, parent_fitness = best_child, best_child_fitness
            history.append(parent_fitness)
            if target_fitness is not None and parent_fitness <= target_fitness:
                break

        # Commit the winning circuit to every participating array so the
        # platform can enter parallel (TMR) or independent operation with it.
        for context in contexts:
            self.platform.configure_array(context.array_index, parent)
            self.platform.set_reference(context.array_index, reference_image)
            result.best_genotypes[context.array_index] = parent
            result.best_fitness[context.array_index] = parent_fitness
            result.fitness_history[context.array_index] = history
        result.platform_time_s = scheduler.total_time_s
        result.n_reconfigurations = scheduler.total_reconfigurations
        result.n_generations = scheduler.n_generations
        self._collect_cache_stats(result, contexts)
        return result


class CascadedEvolution(EvolutionDriver):
    """Cascaded evolution modes (Fig. 6).

    Parameters
    ----------
    fitness_mode:
        ``SEPARATE`` — each stage has its own fitness unit (all stages use
        the same reference image; stage *i+1* is trained on the output of
        stage *i*).  ``MERGED`` — a single fitness unit at the end of the
        chain judges candidates by the final output.
    schedule:
        ``SEQUENTIAL`` — stage *i+1* evolves after stage *i* finished.
        ``INTERLEAVED`` — all stages advance one generation per round.

    Unless explicit ``seed_genotypes`` are given, stage 0 starts from the
    pass-through (identity) circuit and every later stage starts from the
    better of two natural candidates evaluated on its actual input: the
    pass-through circuit (the stage begins as a no-op, so the chain can only
    improve) and a copy of the previous stage's circuit (repeating a good
    filter often helps, which is exactly the "same filter in every stage"
    baseline of Figs. 16-17).  This keeps short adaptation budgets
    well-behaved — a randomly seeded stage would initially *degrade* the
    stream it is inserted into — while preserving the monotone-improvement
    guarantee.  Passing random seed genotypes restores the paper's
    from-scratch behaviour.
    """

    def __init__(
        self,
        *args,
        fitness_mode: CascadeFitnessMode = CascadeFitnessMode.SEPARATE,
        schedule: CascadeSchedule = CascadeSchedule.SEQUENTIAL,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(fitness_mode, CascadeFitnessMode):
            raise TypeError("fitness_mode must be a CascadeFitnessMode")
        if not isinstance(schedule, CascadeSchedule):
            raise TypeError("schedule must be a CascadeSchedule")
        self.fitness_mode = fitness_mode
        self.schedule = schedule

    # ------------------------------------------------------------------ #
    def _chain_output(
        self,
        contexts: List[ArrayEvalContext],
        parents: List[Genotype],
        stage: int,
        candidate: Genotype,
        stage_input: np.ndarray,
    ) -> np.ndarray:
        """Output of the full chain with ``candidate`` at ``stage``.

        Downstream stages keep their current parents (the merged-fitness
        arrangement: all candidates are judged by the end-of-chain output).
        """
        data = contexts[stage].acb.array.process(stage_input, candidate)
        for downstream in range(stage + 1, len(contexts)):
            data = contexts[downstream].acb.array.process(data, parents[downstream])
        return data

    def _stage_fitness(
        self,
        contexts: List[ArrayEvalContext],
        parents: List[Genotype],
        stage: int,
        candidate: Genotype,
        stage_input: np.ndarray,
        reference: np.ndarray,
    ) -> float:
        if self.fitness_mode == CascadeFitnessMode.SEPARATE:
            output = contexts[stage].acb.array.process(stage_input, candidate)
            return sae(output, reference)
        final_output = self._chain_output(contexts, parents, stage, candidate, stage_input)
        return sae(final_output, reference)

    def _stage_input(
        self,
        contexts: List[ArrayEvalContext],
        parents: List[Genotype],
        stage: int,
        training_image: np.ndarray,
    ) -> np.ndarray:
        """Input image of ``stage``: the training image filtered by the
        current parents of all upstream stages."""
        data = np.asarray(training_image)
        for upstream in range(stage):
            data = contexts[upstream].acb.array.process(data, parents[upstream])
        return data

    # ------------------------------------------------------------------ #
    def run(
        self,
        training_image: np.ndarray,
        reference_image: np.ndarray,
        n_generations: int,
        n_stages: Optional[int] = None,
        seed_genotypes: Optional[Sequence[Genotype]] = None,
        target_fitness: Optional[float] = None,
    ) -> PlatformEvolutionResult:
        """Evolve a collaborative cascade of ``n_stages`` stages.

        ``n_generations`` is the budget per stage (sequential schedule) or
        the number of rounds (interleaved schedule, where each round
        advances every stage by one generation).
        """
        training_image = np.asarray(training_image)
        reference_image = np.asarray(reference_image)
        n_stages = n_stages if n_stages is not None else self.platform.n_arrays
        if not 1 <= n_stages <= self.platform.n_arrays:
            raise ValueError(
                f"n_stages must be in [1, {self.platform.n_arrays}], got {n_stages}"
            )
        contexts = [
            self._context(index, training_image) for index in range(n_stages)
        ]
        scheduler = self._make_scheduler(n_arrays=1, n_pixels=int(training_image.size))
        result = PlatformEvolutionResult()
        # The cascade's timeline spans every stage-generation: one scenario
        # step per evolve_stage_one_generation call, whatever the schedule.
        scenario_runner = self._begin_scenario(n_stages * n_generations)

        parents: List[Genotype] = []
        parent_fitness: List[float] = []
        explicitly_seeded: List[bool] = []
        for stage in range(n_stages):
            if seed_genotypes is not None and stage < len(seed_genotypes):
                parents.append(seed_genotypes[stage].copy())
                explicitly_seeded.append(True)
            else:
                parents.append(Genotype.identity(self.platform.spec))
                explicitly_seeded.append(False)
            parent_fitness.append(math.inf)
        histories: List[List[float]] = [[] for _ in range(n_stages)]

        def evolve_stage_one_generation(stage: int) -> None:
            self._advance_scenario(scenario_runner, result)
            stage_input = self._stage_input(contexts, parents, stage, training_image)
            if not math.isfinite(parent_fitness[stage]):
                parent_fitness[stage] = self._stage_fitness(
                    contexts, parents, stage, parents[stage], stage_input, reference_image
                )
                result.n_evaluations += 1
                if stage > 0 and not explicitly_seeded[stage]:
                    # Also consider repeating the previous stage's circuit as
                    # the starting point; keep whichever candidate is better
                    # on this stage's actual input.
                    repeat = parents[stage - 1].copy()
                    repeat_fitness = self._stage_fitness(
                        contexts, parents, stage, repeat, stage_input, reference_image
                    )
                    result.n_evaluations += 1
                    if repeat_fitness < parent_fitness[stage]:
                        parents[stage] = repeat
                        parent_fitness[stage] = repeat_fitness
            mutations = self._offspring_mutations(parents[stage])
            offspring_counts = self._place_offspring(contexts[stage], mutations)
            if (
                self.population_batching
                and self.fitness_mode == CascadeFitnessMode.SEPARATE
                and mutations
            ):
                # Separate fitness units judge each candidate on its own
                # stage output, so the whole offspring population goes
                # through the fused population entry point via the stage's
                # cached context.  Retargeting only when the stage input
                # actually changed *in value* keeps the context's planes
                # object stable while upstream parents are frozen (always
                # for stage 0; per sequential-stage run for later stages),
                # so the backend's per-plane-set stores — and the
                # memoisation they carry — survive across generations.
                context = contexts[stage]
                if context.training_image is not stage_input and not np.array_equal(
                    context.training_image, stage_input
                ):
                    context.retarget(stage_input)
                fitnesses = context.fitness_population(
                    [m.genotype for m in mutations], reference_image,
                    threshold=parent_fitness[stage],
                )
            elif (
                self.batched
                and self.fitness_mode == CascadeFitnessMode.SEPARATE
                and len(mutations) > 1
            ):
                # Separate fitness units judge each candidate on its own
                # stage output, so the whole offspring batch can share one
                # windowed pass over the stage input.
                planes = extract_windows(stage_input)
                outputs = contexts[stage].acb.array.process_planes_batch(
                    planes, [m.genotype for m in mutations]
                )
                fitnesses = [sae(output, reference_image) for output in outputs]
            else:
                fitnesses = [
                    self._stage_fitness(
                        contexts, parents, stage, m.genotype, stage_input, reference_image
                    )
                    for m in mutations
                ]
            result.n_evaluations += len(mutations)
            best_child, best_child_fitness = self._best_offspring(mutations, fitnesses)
            scheduler.record_generation(offspring_counts)
            if best_child is not None and self._accept(best_child_fitness, parent_fitness[stage]):
                parents[stage] = best_child
                parent_fitness[stage] = best_child_fitness
            histories[stage].append(parent_fitness[stage])

        if self.schedule == CascadeSchedule.SEQUENTIAL:
            for stage in range(n_stages):
                for _ in range(n_generations):
                    evolve_stage_one_generation(stage)
                    if target_fitness is not None and parent_fitness[stage] <= target_fitness:
                        break
        else:  # interleaved: one generation per stage per round
            for _ in range(n_generations):
                for stage in range(n_stages):
                    evolve_stage_one_generation(stage)
                if target_fitness is not None and min(parent_fitness) <= target_fitness:
                    break

        for stage in range(n_stages):
            self.platform.configure_array(stage, parents[stage])
            self.platform.set_reference(stage, reference_image)
            result.best_genotypes[stage] = parents[stage]
            result.best_fitness[stage] = parent_fitness[stage]
            result.fitness_history[stage] = histories[stage]
        result.platform_time_s = scheduler.total_time_s
        result.n_reconfigurations = scheduler.total_reconfigurations
        result.n_generations = scheduler.n_generations
        self._collect_cache_stats(result, contexts)
        return result


class ImitationEvolution(EvolutionDriver):
    """Evolution by Imitation (Fig. 7).

    A (typically faulty) *apprentice* array is bypassed with respect to a
    healthy *master* array; both receive the same input stream, and the
    apprentice is evolved to minimise the MAE between its output and the
    master's.  No reference image is needed, so the technique works when
    the stored references have been erased or damaged — and it is the
    recovery step of both self-healing strategies (§V).
    """

    def run(
        self,
        apprentice_index: int,
        master_index: int,
        input_image: np.ndarray,
        n_generations: int,
        seed_genotype: Optional[Genotype] = None,
        seed_from_master: bool = True,
        target_fitness: Optional[float] = None,
    ) -> PlatformEvolutionResult:
        """Evolve ``apprentice_index`` to imitate ``master_index``.

        Parameters
        ----------
        apprentice_index, master_index:
            The learner and teacher arrays (must differ).
        input_image:
            The live data stream both arrays observe.
        n_generations:
            Generation budget.
        seed_genotype:
            Explicit starting parent; overrides ``seed_from_master``.
        seed_from_master:
            When ``True`` (paper's recommendation, Fig. 19) the apprentice
            starts from a copy of the master's genotype; otherwise from a
            random genotype.
        target_fitness:
            Early-stop imitation-fitness threshold (the paper considers
            ≈100 MAE "enough to say that both evolved systems are almost
            identical").
        """
        if apprentice_index == master_index:
            raise ValueError("apprentice and master must be different arrays")
        input_image = np.asarray(input_image)
        master_acb = self.platform.acb(master_index)
        if master_acb.genotype is None:
            raise RuntimeError("the master array has no configured circuit")
        master_output = master_acb.shadow_process(input_image)

        # The apprentice is bypassed so the cascade keeps streaming while it
        # re-learns (online recovery with an offline-style method).
        self.platform.set_bypass(apprentice_index, True)
        context = self._context(apprentice_index, input_image)
        scheduler = self._make_scheduler(n_arrays=1, n_pixels=int(input_image.size))
        result = PlatformEvolutionResult()
        scenario_runner = self._begin_scenario(n_generations)

        if seed_genotype is not None:
            parent = seed_genotype.copy()
        elif seed_from_master:
            parent = master_acb.genotype.copy()
        else:
            parent = Genotype.random(self.platform.spec, self.rng)
        parent_fitness = context.fitness(parent, master_output)
        result.n_evaluations += 1
        history: List[float] = []

        for _ in range(n_generations):
            self._advance_scenario(scenario_runner, result)
            mutations = self._offspring_mutations(parent)
            offspring_counts = self._place_offspring(context, mutations)
            fitnesses = self._evaluate_offspring(
                context, [m.genotype for m in mutations], master_output,
                threshold=parent_fitness,
            )
            result.n_evaluations += len(mutations)
            best_child, best_child_fitness = self._best_offspring(mutations, fitnesses)
            scheduler.record_generation(offspring_counts)
            if best_child is not None and self._accept(best_child_fitness, parent_fitness):
                parent, parent_fitness = best_child, best_child_fitness
            history.append(parent_fitness)
            if target_fitness is not None and parent_fitness <= target_fitness:
                break

        self.platform.configure_array(apprentice_index, parent)
        self.platform.set_bypass(apprentice_index, False)
        result.best_genotypes[apprentice_index] = parent
        result.best_fitness[apprentice_index] = parent_fitness
        result.fitness_history[apprentice_index] = history
        result.platform_time_s = scheduler.total_time_s
        result.n_reconfigurations = scheduler.total_reconfigurations
        result.n_generations = scheduler.n_generations
        self._collect_cache_stats(result, [context])
        return result
