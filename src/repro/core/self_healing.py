"""Self-healing strategies (§V).

Two strategies are proposed in the paper, one per mission-time arrangement:

* :class:`CascadedSelfHealing` — for cascaded operation (§V.A).  Faults are
  detected by periodically re-running a calibration image and comparing the
  per-array fitness against a stored baseline; a detected fault is first
  scrubbed (if the baseline fitness comes back, the fault was a transient
  SEU); a fault that survives scrubbing is permanent, so the damaged stage
  is placed in bypass mode — keeping the stream flowing — and re-evolved,
  either against the stored reference image (when it still exists) or by
  imitation of a healthy neighbouring array.

* :class:`TmrSelfHealing` — for parallel (TMR) operation (§V.B).  The three
  arrays run the same circuit; the hardware fitness voter detects a
  divergence after every filtered image without needing a calibration
  image, the pixel voter keeps the output stream valid meanwhile, and the
  recovery path (scrub → classify → evolution by imitation → optionally
  paste the recovered configuration everywhere) restores full redundancy.

Both strategies log every step they take so experiments (and downstream
users) can audit the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.core.evolution import ImitationEvolution, PlatformEvolutionResult
from repro.core.modes import ProcessingMode
from repro.core.platform import EvolvableHardwarePlatform
from repro.core.voter import VoteResult
from repro.imaging.metrics import sae
from repro.soc.memory import MemoryRegion

__all__ = [
    "FaultClass",
    "HealingEvent",
    "HealingReport",
    "CascadedSelfHealing",
    "TmrSelfHealing",
]


class FaultClass(Enum):
    """Classification of a detected fault."""

    NONE = "none"            #: no divergence detected
    TRANSIENT = "transient"  #: removed by scrubbing (an SEU)
    PERMANENT = "permanent"  #: survives scrubbing (an LPD)


@dataclass(frozen=True)
class HealingEvent:
    """One step taken by a self-healing strategy."""

    step: str
    array_index: Optional[int] = None
    detail: str = ""


@dataclass
class HealingReport:
    """Outcome of one detection / recovery cycle."""

    fault_class: FaultClass = FaultClass.NONE
    faulty_array: Optional[int] = None
    recovered: bool = False
    events: List[HealingEvent] = field(default_factory=list)
    recovery_result: Optional[PlatformEvolutionResult] = None
    fitness_before: Dict[int, float] = field(default_factory=dict)
    fitness_after: Dict[int, float] = field(default_factory=dict)

    def log(self, step: str, array_index: Optional[int] = None, detail: str = "") -> None:
        """Append an event to the report."""
        self.events.append(HealingEvent(step=step, array_index=array_index, detail=detail))


class CascadedSelfHealing:
    """Self-healing for the cascaded operation mode (§V.A).

    Parameters
    ----------
    platform:
        The multi-array platform (already evolved and in cascaded operation).
    calibration_image, calibration_reference:
        The periodic calibration pattern and its expected (reference) output.
    tolerance:
        Allowed fitness deviation before a fault is declared.
    imitation_generations:
        Generation budget of an imitation-based recovery.
    reference_image_key:
        Key of the stored reference image in flash; when the image is still
        present, recovery re-evolves against it, otherwise it falls back to
        imitation (the paper's motivating scenario).
    n_offspring, mutation_rate, rng:
        EA parameters forwarded to the recovery evolution.
    """

    def __init__(
        self,
        platform: EvolvableHardwarePlatform,
        calibration_image: np.ndarray,
        calibration_reference: np.ndarray,
        tolerance: float = 0.0,
        imitation_generations: int = 200,
        imitation_target_fitness: Optional[float] = 100.0,
        reference_image_key: Optional[str] = None,
        n_offspring: int = 9,
        mutation_rate: int = 3,
        rng=None,
    ) -> None:
        self.platform = platform
        self.calibration_image = np.asarray(calibration_image)
        self.calibration_reference = np.asarray(calibration_reference)
        self.tolerance = float(tolerance)
        self.imitation_generations = imitation_generations
        self.imitation_target_fitness = imitation_target_fitness
        self.reference_image_key = reference_image_key
        self.n_offspring = n_offspring
        self.mutation_rate = mutation_rate
        self.rng = rng

    # ------------------------------------------------------------------ #
    def initialize(self) -> Dict[int, float]:
        """Step (b): record the per-array calibration fitness baseline."""
        return self.platform.calibrate(self.calibration_image, self.calibration_reference)

    def _array_fitness(self, array_index: int) -> float:
        output = self.platform.acb(array_index).shadow_process(self.calibration_image)
        return sae(output, self.calibration_reference)

    def _choose_master(self, faulty_index: int) -> Optional[int]:
        """Closest healthy neighbour in the stack (prefer the upstream one)."""
        candidates = sorted(
            (index for index in range(self.platform.n_arrays) if index != faulty_index),
            key=lambda index: (abs(index - faulty_index), index),
        )
        for index in candidates:
            if not self.platform.fabric.effective_faults(index):
                return index
        return None

    # ------------------------------------------------------------------ #
    def check_and_heal(self, stream_image: Optional[np.ndarray] = None) -> HealingReport:
        """Run one calibration / detection / recovery cycle (steps c–i of §V.A).

        Parameters
        ----------
        stream_image:
            The mission data the cascade keeps processing during recovery;
            it is also the input used for imitation learning.  Defaults to
            the calibration image.
        """
        report = HealingReport()
        baseline = self.platform.calibration_fitness
        if not baseline:
            raise RuntimeError("call initialize() before check_and_heal()")
        stream_image = (
            self.calibration_image if stream_image is None else np.asarray(stream_image)
        )

        # Step (d): re-evaluate fitness with the calibration image.
        report.log("reevaluate_fitness")
        current = {
            index: self._array_fitness(index) for index in range(self.platform.n_arrays)
        }
        report.fitness_before = dict(current)

        # Step (e): compare against the baseline.
        diverging = [
            index
            for index, fitness in current.items()
            if abs(fitness - baseline[index]) > self.tolerance
        ]
        if not diverging:
            report.log("no_fault_detected")
            report.fault_class = FaultClass.NONE
            report.fitness_after = dict(current)
            return report

        faulty_index = diverging[0]
        report.faulty_array = faulty_index
        report.log("fault_detected", faulty_index,
                   detail=f"fitness {current[faulty_index]:.0f} vs baseline "
                          f"{baseline[faulty_index]:.0f}")

        # Step (f): scrub the damaged array (rewrite the last configuration).
        scrub = self.platform.scrub_array(faulty_index)
        report.log("scrub", faulty_index,
                   detail=f"repaired {scrub.n_repaired} region(s), "
                          f"fully_repaired={scrub.fully_repaired}, "
                          f"clean={scrub.clean}")

        # Steps (g)/(h): re-evaluate; equality with the baseline means the
        # fault was transient.
        after_scrub = self._array_fitness(faulty_index)
        if abs(after_scrub - baseline[faulty_index]) <= self.tolerance:
            report.fault_class = FaultClass.TRANSIENT
            report.recovered = True
            report.log("transient_fault_removed", faulty_index)
            report.fitness_after = {
                index: self._array_fitness(index) for index in range(self.platform.n_arrays)
            }
            return report

        # Step (i): the fault is permanent — bypass the array and re-evolve.
        report.fault_class = FaultClass.PERMANENT
        report.log("permanent_fault", faulty_index,
                   detail=f"fitness after scrubbing {after_scrub:.0f}")
        self.platform.set_bypass(faulty_index, True)
        report.log("bypass_engaged", faulty_index)

        reference_available = (
            self.reference_image_key is not None
            and self.platform.memory.contains(MemoryRegion.FLASH, self.reference_image_key)
        )
        if reference_available:
            report.log("reevolution_with_reference", faulty_index)
            recovery = self._reevolve_with_reference(faulty_index, stream_image)
        else:
            master = self._choose_master(faulty_index)
            if master is None:
                report.log("no_healthy_master", faulty_index)
                report.recovered = False
                report.fitness_after = dict(current)
                return report
            report.log("evolution_by_imitation", faulty_index, detail=f"master={master}")
            driver = ImitationEvolution(
                self.platform,
                n_offspring=self.n_offspring,
                mutation_rate=self.mutation_rate,
                rng=self.rng,
            )
            recovery = driver.run(
                apprentice_index=faulty_index,
                master_index=master,
                input_image=stream_image,
                n_generations=self.imitation_generations,
                seed_from_master=True,
                target_fitness=self.imitation_target_fitness,
            )

        report.recovery_result = recovery
        self.platform.set_bypass(faulty_index, False)
        report.log("bypass_released", faulty_index)

        # Refresh the calibration baseline for the recovered array: after a
        # permanent fault the expected fitness may legitimately differ.
        final = {
            index: self._array_fitness(index) for index in range(self.platform.n_arrays)
        }
        report.fitness_after = final
        self.platform.calibrate(self.calibration_image, self.calibration_reference)
        recovered_fitness = recovery.best_fitness.get(faulty_index, float("inf"))
        threshold = self.imitation_target_fitness
        report.recovered = threshold is None or recovered_fitness <= threshold * 10
        report.log("recovery_finished", faulty_index,
                   detail=f"recovery fitness {recovered_fitness:.0f}")
        return report

    def _reevolve_with_reference(
        self, faulty_index: int, stream_image: np.ndarray
    ) -> PlatformEvolutionResult:
        """Recovery path when the stored reference image is still available."""
        from repro.core.evolution import IndependentEvolution
        from repro.soc.memory import MemoryRegion

        reference = self.platform.memory.load(MemoryRegion.FLASH, self.reference_image_key)
        driver = IndependentEvolution(
            self.platform,
            n_offspring=self.n_offspring,
            mutation_rate=self.mutation_rate,
            rng=self.rng,
        )
        return driver.run(
            tasks={faulty_index: (stream_image, reference)},
            n_generations=self.imitation_generations,
            seed_genotypes={faulty_index: self.platform.acb(faulty_index).genotype},
            target_fitness=self.imitation_target_fitness,
        )


class TmrSelfHealing:
    """Self-healing for the parallel (TMR) processing mode (§V.B).

    Parameters
    ----------
    platform:
        Platform with (at least) three arrays configured with the same
        circuit and operating in parallel mode.
    pattern_image, pattern_reference:
        The image used for per-array fitness computation and its expected
        output (the "pattern image" of §V.B).
    imitation_generations, imitation_target_fitness:
        Recovery-evolution budget and the near-zero imitation threshold.
    paste_threshold:
        If the imitation fitness stays above this value the recovered
        configuration is pasted onto every array so the voter remains valid
        (§V.B step h).
    """

    def __init__(
        self,
        platform: EvolvableHardwarePlatform,
        pattern_image: np.ndarray,
        pattern_reference: np.ndarray,
        imitation_generations: int = 200,
        imitation_target_fitness: float = 100.0,
        paste_threshold: float = 100.0,
        n_offspring: int = 9,
        mutation_rate: int = 3,
        rng=None,
    ) -> None:
        if platform.n_arrays < 3:
            raise ValueError("TMR self-healing requires at least three arrays")
        self.platform = platform
        self.pattern_image = np.asarray(pattern_image)
        self.pattern_reference = np.asarray(pattern_reference)
        self.imitation_generations = imitation_generations
        self.imitation_target_fitness = imitation_target_fitness
        self.paste_threshold = paste_threshold
        self.n_offspring = n_offspring
        self.mutation_rate = mutation_rate
        self.rng = rng

    # ------------------------------------------------------------------ #
    def setup(self, genotype) -> None:
        """Step (a): configure the evolved circuit on all arrays, parallel mode."""
        self.platform.configure_all(genotype)
        self.platform.set_processing_mode(ProcessingMode.PARALLEL)

    def array_fitnesses(self) -> Dict[int, float]:
        """Per-array fitness on the pattern image (what the fitness voter sees)."""
        values: Dict[int, float] = {}
        for acb in self.platform.acbs:
            output = acb.shadow_process(self.pattern_image)
            values[acb.index] = sae(output, self.pattern_reference)
        return values

    def vote(self) -> VoteResult:
        """Step (b)/(c): compare per-array fitness values with the fitness voter."""
        values = self.array_fitnesses()
        ordered = [values[index] for index in range(self.platform.n_arrays)]
        return self.platform.fitness_voter.vote(ordered)

    def voted_output(self, image: np.ndarray) -> np.ndarray:
        """Mission output: the pixel-voted result of the three parallel arrays."""
        return self.platform.process_parallel(image, vote=True)

    # ------------------------------------------------------------------ #
    def monitor_and_heal(self, stream_image: Optional[np.ndarray] = None) -> HealingReport:
        """One monitoring cycle: vote, classify and recover if needed (steps b–h)."""
        report = HealingReport()
        stream_image = (
            self.pattern_image if stream_image is None else np.asarray(stream_image)
        )

        values = self.array_fitnesses()
        report.fitness_before = dict(values)
        vote = self.platform.fitness_voter.vote(
            [values[index] for index in range(self.platform.n_arrays)]
        )
        if not vote.fault_detected:
            report.log("no_divergence")
            report.fault_class = FaultClass.NONE
            report.fitness_after = dict(values)
            return report

        faulty_index = int(vote.outlier_index)
        report.faulty_array = faulty_index
        report.log("fitness_divergence", faulty_index,
                   detail=f"values={tuple(round(v, 1) for v in vote.values)}")

        # Step (d): scrub the damaged array.
        scrub = self.platform.scrub_array(faulty_index)
        report.log("scrub", faulty_index,
                   detail=f"repaired {scrub.n_repaired} region(s), "
                          f"fully_repaired={scrub.fully_repaired}, "
                          f"clean={scrub.clean}")

        # Steps (e)/(f): re-evaluate with the pattern image; agreement with
        # the healthy arrays means the fault was transient.
        values_after_scrub = self.array_fitnesses()
        vote_after = self.platform.fitness_voter.vote(
            [values_after_scrub[index] for index in range(self.platform.n_arrays)]
        )
        if not vote_after.fault_detected:
            report.fault_class = FaultClass.TRANSIENT
            report.recovered = True
            report.log("transient_fault_removed", faulty_index)
            report.fitness_after = values_after_scrub
            return report

        # Step (g): permanent fault — recover by evolution by imitation.
        report.fault_class = FaultClass.PERMANENT
        report.log("permanent_fault", faulty_index)
        master_index = self._healthy_master(faulty_index)
        report.log("evolution_by_imitation", faulty_index, detail=f"master={master_index}")
        driver = ImitationEvolution(
            self.platform,
            n_offspring=self.n_offspring,
            mutation_rate=self.mutation_rate,
            rng=self.rng,
        )
        recovery = driver.run(
            apprentice_index=faulty_index,
            master_index=master_index,
            input_image=stream_image,
            n_generations=self.imitation_generations,
            seed_from_master=True,
            target_fitness=self.imitation_target_fitness,
        )
        report.recovery_result = recovery
        recovered_fitness = recovery.best_fitness.get(faulty_index, float("inf"))

        # Step (h): if the imitation did not reach (near) zero, the new
        # configuration is pasted on every array to keep the voter valid.
        pasted = False
        if recovered_fitness > self.paste_threshold:
            report.log("paste_configuration", faulty_index,
                       detail=f"imitation fitness {recovered_fitness:.0f}")
            self.platform.configure_all(recovery.best_genotypes[faulty_index])
            pasted = True
        # Recovery is successful when the apprentice closely imitates the
        # master, or when the common configuration was pasted so the voter
        # stays valid; the output stream stayed correct throughout thanks to
        # the pixel voter either way.
        report.recovered = recovered_fitness <= self.imitation_target_fitness or pasted
        report.fitness_after = self.array_fitnesses()
        report.log("recovery_finished", faulty_index,
                   detail=f"imitation fitness {recovered_fitness:.0f}")
        return report

    def _healthy_master(self, faulty_index: int) -> int:
        for index in range(self.platform.n_arrays):
            if index != faulty_index and not self.platform.fabric.effective_faults(index):
                return index
        # Fall back to any other array (degraded but still the best option).
        return (faulty_index + 1) % self.platform.n_arrays
