"""Generation scheduler — the Fig. 11 pipeline accounting.

Evolution drivers report, for every generation, how many per-PE
reconfigurations each offspring required and where it was evaluated; the
scheduler converts those event counts into platform time under the paper's
schedule:

* the single shared reconfiguration engine places candidates serially;
* candidates of a batch (one per array) are evaluated in parallel;
* a batch's reconfiguration cannot overlap its own arrays' evaluation, so
  one generation costs ``sum(reconfigurations) * T_PE + n_batches * T_eval``;
* chromosome mutation runs in software concurrently with the previous
  evaluation and is charged only if it exceeds the hardware time it hides
  behind.

The scheduler accumulates the run totals that the Figs. 12–14 benchmark
harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.timing.model import EvolutionTimingModel

__all__ = ["GenerationTiming", "GenerationScheduler"]


@dataclass(frozen=True)
class GenerationTiming:
    """Timing of one generation."""

    generation: int
    n_offspring: int
    n_batches: int
    n_pe_reconfigurations: int
    reconfiguration_s: float
    evaluation_s: float
    software_s: float
    total_s: float


@dataclass
class GenerationScheduler:
    """Accumulates platform time for an evolution run.

    Parameters
    ----------
    timing_model:
        The per-event cost model.
    n_arrays:
        Number of arrays available for parallel evaluation (1 for the
        single-array schedule of Fig. 11-top, 3 for Fig. 11-bottom).
    n_pixels:
        Pixels of the training image (drives evaluation time).
    """

    timing_model: EvolutionTimingModel
    n_arrays: int
    n_pixels: int
    history: List[GenerationTiming] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if self.n_pixels < 1:
            raise ValueError("n_pixels must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Total accumulated platform time."""
        return sum(record.total_s for record in self.history)

    @property
    def total_reconfigurations(self) -> int:
        """Total per-PE reconfigurations accumulated."""
        return sum(record.n_pe_reconfigurations for record in self.history)

    @property
    def n_generations(self) -> int:
        """Number of generations accounted so far."""
        return len(self.history)

    # ------------------------------------------------------------------ #
    def record_generation(self, reconfigurations_per_offspring: Sequence[int]) -> GenerationTiming:
        """Account one generation given each offspring's reconfiguration count.

        Parameters
        ----------
        reconfigurations_per_offspring:
            Number of per-PE writes needed to place each offspring on its
            array (in evaluation order).

        Returns
        -------
        GenerationTiming
            The timing record, also appended to :attr:`history`.
        """
        counts = [int(c) for c in reconfigurations_per_offspring]
        if not counts:
            raise ValueError("a generation must evaluate at least one offspring")
        if any(c < 0 for c in counts):
            raise ValueError("reconfiguration counts must be non-negative")
        model = self.timing_model
        n_offspring = len(counts)
        n_batches = -(-n_offspring // self.n_arrays)

        reconfiguration_s = model.reconfiguration_time_s(sum(counts))
        evaluation_s = n_batches * model.evaluation_time_s(self.n_pixels)

        # Mutation software time is overlapped with the previous candidate's
        # hardware activity; only the excess is charged.
        software_exposed = 0.0
        for count in counts:
            mutation = model.microblaze.mutation_time_s(max(1, count))
            slot = model.reconfiguration_time_s(count) + model.evaluation_time_s(
                self.n_pixels
            ) / self.n_arrays
            if mutation > slot:
                software_exposed += mutation - slot
        software_s = (
            software_exposed
            + model.microblaze.selection_time_s(n_offspring)
            + model.microblaze.generation_overhead_s()
        )

        record = GenerationTiming(
            generation=len(self.history) + 1,
            n_offspring=n_offspring,
            n_batches=n_batches,
            n_pe_reconfigurations=sum(counts),
            reconfiguration_s=reconfiguration_s,
            evaluation_s=evaluation_s,
            software_s=software_s,
            total_s=reconfiguration_s + evaluation_s + software_s,
        )
        self.history.append(record)
        return record

    def reset(self) -> None:
        """Clear the accumulated history."""
        self.history.clear()
