"""The paper's new two-level-mutation evolutionary algorithm (§VI.B).

The evolution time of the classic parallel EA "always depends strongly on
the mutation rate", because every offspring is mutated from the parent with
the nominal rate ``k`` and each mutated function gene costs one partial
reconfiguration.  The new strategy breaks that dependence:

    "the first parallel evaluation of every generation (in this case, the
    first three chromosomes) are created by mutating the selected
    chromosome from the previous generation with the usual mutation rate,
    but the other parallel evaluations of the same generation (six
    chromosomes) are created by mutating the chromosomes of the previously
    generated ones, but these mutations are always done with low mutation
    rate (k=1).  Thus, every evaluated circuit is similar to the previous
    one, and so, fewer reconfigurations are carried out in every
    generation."

Because each array's successive candidates within a generation differ by a
single gene, the number of PE rewrites per generation is dominated by the
first batch only, and evolution time becomes almost flat in ``k``
(Fig. 14) while the chained low-rate mutations explore the neighbourhood of
good candidates more finely, which the paper observes to give equal or
better fitness (Fig. 15).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.array.genotype import Genotype
from repro.core.evolution import ParallelEvolution, ArrayEvalContext
from repro.ea.mutation import MutationResult, mutate, population_mutator

__all__ = ["TwoLevelMutationEvolution"]


class TwoLevelMutationEvolution(ParallelEvolution):
    """Parallel evolution with the two-level mutation offspring plan.

    All constructor parameters are inherited from
    :class:`~repro.core.evolution.ParallelEvolution`; ``mutation_rate`` is
    the *first-batch* rate ``k``, and the low rate used for the remaining
    batches is ``low_mutation_rate`` (paper: 1).  That includes the
    ``scenario`` fault-timeline hook: the inherited generation loop fires
    the compiled scenario events at the start of every generation, so the
    two-level EA participates in mid-evolution fault campaigns exactly
    like the classic parallel EA (``tests/scenarios/`` covers it).

    The staged fitness pipeline is likewise inherited: offspring are
    evaluated through each context's :class:`~repro.ea.pipeline.FitnessPipeline`
    with the ``fitness_cache``/``racing`` knobs and the
    ``threshold=parent_fitness`` early-rejection bound exactly as in the
    parent class — this subclass only changes *which* genotypes are
    proposed, never how they are scored.
    """

    def __init__(self, *args, low_mutation_rate: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if low_mutation_rate < 1:
            raise ValueError("low_mutation_rate must be >= 1")
        self.low_mutation_rate = low_mutation_rate

    def _generation_offspring(
        self, parent: Genotype, contexts: List[ArrayEvalContext]
    ) -> List[Tuple[int, MutationResult]]:
        """Two-level offspring plan.

        Batch 0: one offspring per array, mutated from the generation's
        parent with the nominal rate ``k``.  Batches 1..: the offspring
        evaluated on array *j* is a low-rate (``k=1`` by default) mutation
        of the offspring evaluated on array *j* in the *previous* batch, so
        consecutive circuits on the same array differ by very few genes and
        the reconfiguration engine has almost nothing to rewrite.
        """
        if self.population_batching:
            return self._generation_offspring_population(parent)
        plan: List[Tuple[int, MutationResult]] = []
        previous_batch: List[Genotype] = []

        n_batches = -(-self.n_offspring // self.n_arrays)
        produced = 0
        for batch in range(n_batches):
            current_batch: List[Genotype] = []
            for slot in range(self.n_arrays):
                if produced >= self.n_offspring:
                    break
                if batch == 0:
                    mutation = mutate(parent, self.mutation_rate, self.rng)
                else:
                    source = previous_batch[slot] if slot < len(previous_batch) else parent
                    mutation = mutate(source, self.low_mutation_rate, self.rng)
                plan.append((slot, mutation))
                current_batch.append(mutation.genotype)
                produced += 1
            previous_batch = current_batch
        return plan

    def _generation_offspring_population(
        self, parent: Genotype
    ) -> List[Tuple[int, MutationResult]]:
        """Population-batched two-level plan, byte-identical to the loop above.

        The chained low-rate mutations make each offspring depend on the
        *flat gene vector* of the offspring evaluated on the same array in
        the previous batch, so the whole generation is built over flat
        vectors through the shared
        :class:`~repro.ea.mutation.PopulationMutator` — same RNG calls in
        the same plan order, none of the per-call genotype plumbing.
        """
        mutator = population_mutator(parent.spec)
        parent_flat: Optional[np.ndarray] = None
        plan: List[Tuple[int, MutationResult]] = []
        previous_flats: List[np.ndarray] = []

        n_batches = -(-self.n_offspring // self.n_arrays)
        produced = 0
        for batch in range(n_batches):
            current_flats: List[np.ndarray] = []
            for slot in range(self.n_arrays):
                if produced >= self.n_offspring:
                    break
                if parent_flat is None:
                    parent_flat = mutator.to_flat(parent)
                if batch == 0:
                    source_flat, rate = parent_flat, self.mutation_rate
                else:
                    source_flat = (
                        previous_flats[slot] if slot < len(previous_flats) else parent_flat
                    )
                    rate = self.low_mutation_rate
                child_flat, mutation = mutator.mutate_flat(source_flat, rate, self.rng)
                plan.append((slot, mutation))
                current_flats.append(child_flat)
                produced += 1
            previous_flats = current_flats
        return plan
