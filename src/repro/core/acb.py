"""Array Control Block (ACB).

"Each processing array with its corresponding controller, the structures to
compute and to deal with the variable latency of the arrays, some FIFOs to
align data and the fitness unit are envisaged as a unique module, so that
the EHW architecture can grow by changing the number of those modules
instantiated in the design.  This basic module is referred as Array Control
Block (ACB)." (paper §III.B, Fig. 3)

The ACB model owns:

* the evolvable :class:`~repro.array.systolic_array.SystolicArray` (whose
  per-PE fault state is kept in sync with the FPGA fabric model),
* the **fitness unit**, configurable to compare the array output against a
  reference image, against the array's own input, or against a neighbouring
  array's output (:class:`~repro.core.modes.FitnessSource`),
* the **window FIFO** that rebuilds the 3x3 sliding window between cascade
  stages (functionally: window re-extraction on the stage input),
* the mode/control registers, mirrored into the platform's shared
  :class:`~repro.soc.register_map.RegisterFile` so the software-visible
  interface matches the hardware's self-addressing scheme.

Configuring a candidate writes only the *changed* PE bitstreams through the
shared reconfiguration engine (and the mux genes through registers), and
returns how many reconfigurations that took — the quantity the evolution
timing model charges for.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.array.genotype import Genotype
from repro.array.systolic_array import SystolicArray
from repro.core.modes import FitnessSource
from repro.fpga.fabric import FpgaFabric, RegionAddress
from repro.fpga.reconfiguration_engine import ReconfigurationEngine
from repro.imaging.metrics import sae
from repro.soc.register_map import AcbRegisters, RegisterFile

__all__ = ["FitnessUnit", "ArrayControlBlock"]


class FitnessUnit:
    """Hardware MAE unit of one ACB.

    Computes the pixel-aggregated absolute error between the array output
    and a selectable source (reference image, stage input or a neighbouring
    array's output) and latches the result for the EA to read back.
    """

    def __init__(self) -> None:
        self.source = FitnessSource.REFERENCE
        self.last_value: Optional[float] = None
        self.n_computations = 0

    def configure(self, source: FitnessSource) -> None:
        """Select what the unit compares the array output against."""
        if not isinstance(source, FitnessSource):
            raise TypeError(f"expected FitnessSource, got {type(source)!r}")
        self.source = source

    def compute(self, output: np.ndarray, comparand: np.ndarray) -> float:
        """Latch and return the aggregated MAE between output and comparand."""
        value = sae(output, comparand)
        self.last_value = value
        self.n_computations += 1
        return value


@dataclass
class AcbStatus:
    """Snapshot of an ACB's control state (mirrors the STATUS register)."""

    bypassed: bool
    faulty_pes: Tuple[Tuple[int, int], ...]
    configured: bool
    fitness_source: FitnessSource


class ArrayControlBlock:
    """One ACB: an evolvable array plus its control and fitness logic.

    Parameters
    ----------
    index:
        Position of this ACB in the vertical stack (also its array index in
        the fabric model and its window in the register file).
    fabric:
        Shared FPGA fabric model.
    engine:
        Shared reconfiguration engine.
    registers:
        Shared register file implementing the self-addressing scheme.
    backend:
        Evaluation backend of the functional array model (a registered
        name such as ``"reference"``/``"numpy"``, an
        :class:`~repro.backends.base.EvaluationBackend` instance, or
        ``None`` for the reference default).  Backends are bit-exact;
        see :mod:`repro.backends`.
    """

    def __init__(
        self,
        index: int,
        fabric: FpgaFabric,
        engine: ReconfigurationEngine,
        registers: RegisterFile,
        backend=None,
    ) -> None:
        if index < 0 or index >= fabric.n_arrays:
            raise ValueError(
                f"ACB index {index} out of range for a fabric with {fabric.n_arrays} arrays"
            )
        self.index = index
        self.fabric = fabric
        self.engine = engine
        self.registers = registers
        self.array = SystolicArray(geometry=fabric.geometry, backend=backend)
        self.fitness_unit = FitnessUnit()
        self.genotype: Optional[Genotype] = None
        self.bypassed = False
        self._reference: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def _write_mux_registers(self, genotype: Genotype) -> None:
        """Mirror the multiplexer genes into the ACB register window."""
        for row, gene in enumerate(genotype.west_mux):
            self.registers.write_register(
                self.index, AcbRegisters.WEST_MUX_BASE, int(gene), lane=row
            )
        for col, gene in enumerate(genotype.north_mux):
            self.registers.write_register(
                self.index, AcbRegisters.NORTH_MUX_BASE, int(gene), lane=col
            )
        self.registers.write_register(
            self.index, AcbRegisters.OUTPUT_SELECT, int(genotype.output_select)
        )

    def configure(self, genotype: Genotype) -> Tuple[int, float]:
        """Place a candidate circuit on this ACB's array.

        Only PEs whose function gene differs from what is currently
        configured on the fabric are rewritten (through the shared engine);
        multiplexer and output-select genes are register writes.

        Returns
        -------
        (n_reconfigurations, engine_busy_time_s)
        """
        genotype = genotype.copy()
        geometry = self.fabric.geometry
        if (genotype.spec.rows, genotype.spec.cols) != (geometry.rows, geometry.cols):
            raise ValueError("genotype geometry does not match the fabric's arrays")

        currently_configured = self.fabric.configured_genes(self.index)
        placements: List[Tuple[RegionAddress, int]] = []
        for row in range(geometry.rows):
            for col in range(geometry.cols):
                wanted = int(genotype.function_genes[row, col])
                if int(currently_configured[row, col]) != wanted:
                    placements.append((RegionAddress(self.index, row, col), wanted))
        elapsed = self.engine.reconfigure_many(placements)
        self._write_mux_registers(genotype)
        self.genotype = genotype
        self.sync_faults()
        return len(placements), elapsed

    def sync_faults(self) -> None:
        """Propagate the fabric's fault state into the functional array model.

        The platform calls this after every operation that may change the
        fabric's fault set (injection, scrubbing, reconfiguration) so the
        functional array model always mirrors the hardware state.
        """
        self.array.clear_all_faults()
        for position in self.fabric.effective_faults(self.index):
            # Seed the garbage generator deterministically from the position
            # so repeated experiments are reproducible.
            seed = hash((self.index, position)) & 0x7FFFFFFF
            self.array.inject_fault(position, seed)

    def _sync_faults(self) -> None:
        """Deprecated alias of :meth:`sync_faults` (kept for compatibility)."""
        warnings.warn(
            "ArrayControlBlock._sync_faults is deprecated; use sync_faults()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.sync_faults()

    # ------------------------------------------------------------------ #
    # Control registers / modes
    # ------------------------------------------------------------------ #
    def set_bypass(self, bypassed: bool) -> None:
        """Engage or release the bypass connection around this stage.

        A bypassed stage forwards its input unchanged to the next stage but
        *still receives the input stream*, so its array can be re-evolved
        online (the basis of the imitation-based self-healing strategy).
        """
        self.bypassed = bool(bypassed)
        control = self.registers.read_register(self.index, AcbRegisters.CONTROL)
        control = (control | 0x1) if self.bypassed else (control & ~0x1)
        self.registers.write_register(self.index, AcbRegisters.CONTROL, control)

    def set_fitness_source(self, source: FitnessSource) -> None:
        """Program the fitness unit's comparison source."""
        self.fitness_unit.configure(source)
        self.registers.write_register(
            self.index, AcbRegisters.FITNESS_MODE, list(FitnessSource).index(source)
        )

    def set_reference(self, reference: Optional[np.ndarray]) -> None:
        """Load (or clear) the reference image used by the fitness unit."""
        self._reference = None if reference is None else np.asarray(reference)

    @property
    def reference(self) -> Optional[np.ndarray]:
        """The currently loaded reference image (``None`` when unavailable)."""
        return self._reference

    @property
    def latency_cycles(self) -> int:
        """Array pipeline latency, as exposed by the LATENCY register."""
        return self.array.latency

    def status(self) -> AcbStatus:
        """Snapshot of this ACB's control state."""
        return AcbStatus(
            bypassed=self.bypassed,
            faulty_pes=self.array.faulty_positions,
            configured=self.genotype is not None,
            fitness_source=self.fitness_unit.source,
        )

    # ------------------------------------------------------------------ #
    # Data path
    # ------------------------------------------------------------------ #
    def process(self, image: np.ndarray) -> np.ndarray:
        """Filter one image with the configured circuit.

        A bypassed ACB forwards the image unchanged (the stage's
        contribution to the chain is the identity); its array output can
        still be obtained with :meth:`shadow_process` for imitation
        evolution.
        """
        if self.bypassed:
            return np.asarray(image).copy()
        return self.shadow_process(image)

    def shadow_process(self, image: np.ndarray) -> np.ndarray:
        """Run the array on an image regardless of the bypass setting."""
        if self.genotype is None:
            raise RuntimeError(
                f"ACB {self.index} has no configured circuit; call configure() first"
            )
        self.sync_faults()
        return self.array.process(image, self.genotype)

    def evaluate_fitness(
        self,
        input_image: np.ndarray,
        neighbour_output: Optional[np.ndarray] = None,
    ) -> float:
        """Process ``input_image`` and latch the fitness against the configured source.

        Parameters
        ----------
        input_image:
            Image presented at this stage's input.
        neighbour_output:
            Output of the adjacent array, required when the fitness source
            is :attr:`~repro.core.modes.FitnessSource.NEIGHBOUR`.
        """
        output = self.shadow_process(input_image)
        source = self.fitness_unit.source
        if source == FitnessSource.REFERENCE:
            if self._reference is None:
                raise RuntimeError(
                    f"ACB {self.index}: fitness source is REFERENCE but no reference "
                    "image is loaded"
                )
            comparand = self._reference
        elif source == FitnessSource.INPUT:
            comparand = np.asarray(input_image)
        elif source == FitnessSource.NEIGHBOUR:
            if neighbour_output is None:
                raise RuntimeError(
                    f"ACB {self.index}: fitness source is NEIGHBOUR but no neighbour "
                    "output was provided"
                )
            comparand = np.asarray(neighbour_output)
        else:  # pragma: no cover - exhaustive enum
            raise RuntimeError(f"unknown fitness source {source}")
        value = self.fitness_unit.compute(output, comparand)
        self.registers.write_register(
            self.index, AcbRegisters.FITNESS_VALUE, int(min(value, 2**32 - 1))
        )
        self.registers.write_register(
            self.index, AcbRegisters.LATENCY_VALUE, self.latency_cycles
        )
        return value
