"""TMR voters for the parallel processing mode.

"Two different voter modules are implemented, depending on fitness
comparisons or by pixel by pixel comparisons of the processed image
outputs.  Both voters are implemented in hardware, so the comparison would
be at run-time.  Fitness voter is able to detect, after each image
filtering, if a fault has occurred.  On the other hand, the output pixel
voter is able to keep the system working with no fault impact." (§V.B)

* :class:`FitnessVoter` — compares the per-array fitness values (or any
  per-array scalar) and flags the array whose value diverges from the
  others beyond a similarity threshold.  After a permanent-fault recovery
  the re-evolved array may have a slightly different expected fitness, so
  the threshold is configurable ("a similarity threshold can be defined in
  the voter").
* :class:`PixelVoter` — produces a majority (median) output image from the
  three parallel outputs, masking the effect of a single faulty array on
  the output stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["VoteResult", "FitnessVoter", "PixelVoter"]


@dataclass(frozen=True)
class VoteResult:
    """Outcome of one fitness vote.

    Attributes
    ----------
    fault_detected:
        Whether any array's value diverges beyond the threshold.
    outlier_index:
        Index of the diverging array (``None`` when no fault was detected
        or when the divergence pattern does not single out one array).
    values:
        The compared values.
    spread:
        Largest absolute pairwise difference among the values.
    """

    fault_detected: bool
    outlier_index: Optional[int]
    values: tuple
    spread: float


class FitnessVoter:
    """Majority voter over per-array fitness values.

    Parameters
    ----------
    threshold:
        Maximum tolerated absolute difference between an array's value and
        the median of all values.  Values within the threshold are treated
        as equal (this is the paper's similarity threshold; exact equality
        would misfire after an imitation-based recovery that reaches a
        near-zero but non-zero imitation fitness).
    """

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def vote(self, values: Sequence[float]) -> VoteResult:
        """Compare per-array values and identify a diverging array, if any."""
        values = tuple(float(v) for v in values)
        if len(values) < 2:
            raise ValueError("fitness voting requires at least two arrays")
        arr = np.asarray(values, dtype=np.float64)
        median = float(np.median(arr))
        deviations = np.abs(arr - median)
        spread = float(arr.max() - arr.min())
        outliers = np.nonzero(deviations > self.threshold)[0]
        if outliers.size == 0:
            return VoteResult(False, None, values, spread)
        # The outlier is the array farthest from the median; with a single
        # fault (the TMR assumption) exactly one array diverges.
        outlier_index = int(np.argmax(deviations))
        return VoteResult(True, outlier_index, values, spread)


class PixelVoter:
    """Pixel-wise majority voter over parallel array outputs.

    For three (or any odd number of) 8-bit outputs the per-pixel median
    equals the bitwise majority for two-agreeing inputs and is the standard
    TMR voting choice for data words; it keeps the output stream valid in
    the presence of a single misbehaving array.
    """

    def vote(self, outputs: Sequence[np.ndarray]) -> np.ndarray:
        """Return the voted output image."""
        if len(outputs) < 2:
            raise ValueError("pixel voting requires at least two outputs")
        shapes = {np.asarray(out).shape for out in outputs}
        if len(shapes) != 1:
            raise ValueError(f"all outputs must share one shape, got {shapes}")
        stack = np.stack([np.asarray(out, dtype=np.uint8) for out in outputs], axis=0)
        return np.median(stack, axis=0).astype(np.uint8)

    def disagreement_map(self, outputs: Sequence[np.ndarray]) -> np.ndarray:
        """Boolean map of pixels where not all outputs agree (diagnostics)."""
        if len(outputs) < 2:
            raise ValueError("disagreement requires at least two outputs")
        stack = np.stack([np.asarray(out, dtype=np.uint8) for out in outputs], axis=0)
        return np.any(stack != stack[0], axis=0)

    def disagreement_fraction(self, outputs: Sequence[np.ndarray]) -> float:
        """Fraction of pixels with any disagreement."""
        disagreement = self.disagreement_map(outputs)
        return float(np.count_nonzero(disagreement)) / disagreement.size
