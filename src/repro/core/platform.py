"""The multi-array Evolvable Hardware platform.

This is the top-level object a user of the library instantiates: a stack of
Array Control Blocks on a shared FPGA fabric with one reconfiguration
engine, an external memory, a register file and the TMR voters — the whole
SoPC of the paper's Fig. 2, with the number of arrays as a constructor
parameter ("scalable arrays with multiple arrays can be directly built up
by assembling the required number of these modules", §III.B).

The platform exposes:

* **configuration** — placing candidate circuits on individual arrays
  through DPR (:meth:`EvolvableHardwarePlatform.configure_array`);
* **processing modes** — cascaded (with optional per-stage bypass),
  parallel (optionally voted) and independent mission-time operation
  (:meth:`process_cascade`, :meth:`process_parallel`,
  :meth:`process_independent`);
* **fault handling** — SEU/LPD injection, scrubbing and calibration
  snapshots used by the self-healing strategies in
  :mod:`repro.core.self_healing`;
* access to the underlying substrates (fabric, engine, memory, registers)
  for experiments that need to poke them directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.array.genotype import Genotype, GenotypeSpec
from repro.array.systolic_array import ArrayGeometry
from repro.core.acb import ArrayControlBlock
from repro.core.modes import ProcessingMode
from repro.core.voter import FitnessVoter, PixelVoter
from repro.fpga.fabric import FpgaFabric, RegionAddress
from repro.fpga.faults import FaultInjector
from repro.fpga.icap import IcapModel
from repro.fpga.reconfiguration_engine import ReconfigurationEngine
from repro.fpga.resources import ResourceModel, ResourceReport
from repro.fpga.scrubbing import ScrubReport, Scrubber
from repro.imaging.metrics import sae
from repro.soc.memory import ExternalMemory, MemoryRegion
from repro.soc.register_map import AcbRegisterMap, RegisterFile
from repro.timing.model import EvolutionTimingModel

__all__ = ["EvolvableHardwarePlatform"]


class EvolvableHardwarePlatform:
    """A scalable multi-array evolvable hardware system.

    Parameters
    ----------
    n_arrays:
        Number of Array Control Blocks (the paper's experiments use 3).
    geometry:
        Per-array geometry (defaults to the paper's 4x4 array of
        2x5-CLB PEs).
    icap:
        ICAP timing model shared by the reconfiguration engine.
    fitness_voter_threshold:
        Similarity threshold of the TMR fitness voter.
    seed:
        Seed for the platform's random number generator (fault targeting,
        initial random candidates drawn through :meth:`random_genotype`).
    backend:
        Evaluation backend of every array's functional model: a name
        registered in :data:`repro.backends.BACKENDS` (``"reference"``,
        ``"numpy"``), an :class:`~repro.backends.base.EvaluationBackend`
        instance, or ``None`` for the reference default.  All backends
        are bit-exact against each other, so the switch only changes the
        simulation's wall-clock time — never its results.
    """

    def __init__(
        self,
        n_arrays: int = 3,
        geometry: ArrayGeometry = ArrayGeometry(),
        icap: IcapModel = IcapModel(),
        fitness_voter_threshold: float = 0.0,
        seed: Optional[int] = None,
        backend=None,
    ) -> None:
        if n_arrays < 1:
            raise ValueError(f"n_arrays must be >= 1, got {n_arrays}")
        self.geometry = geometry
        self.rng = np.random.default_rng(seed)

        # Substrates --------------------------------------------------- #
        # The fabric derives its own SEU-targeting stream from the platform
        # seed (tagged, so it never aliases self.rng's stream).
        self.fabric = FpgaFabric(n_arrays=n_arrays, geometry=geometry, seed=seed)
        self.engine = ReconfigurationEngine(self.fabric, icap=icap)
        self.registers = RegisterFile(AcbRegisterMap(n_acbs=n_arrays))
        self.memory = ExternalMemory()
        self.fault_injector = FaultInjector(self.fabric, engine=self.engine, rng=self.rng)
        self.scrubber = Scrubber(self.fabric, self.engine)
        self.resource_model = ResourceModel(geometry=geometry)

        # ACB stack ----------------------------------------------------- #
        # A backend *name* resolves to one engine instance per array; an
        # explicit instance is shared by every array (safe: cached planes
        # are array-independent — fault draws never enter any cache).
        self.acbs: List[ArrayControlBlock] = [
            ArrayControlBlock(index, self.fabric, self.engine, self.registers,
                              backend=backend)
            for index in range(n_arrays)
        ]

        # Mission-time plumbing ----------------------------------------- #
        self.processing_mode = ProcessingMode.CASCADED
        self.fitness_voter = FitnessVoter(threshold=fitness_voter_threshold)
        self.pixel_voter = PixelVoter()
        self._calibration_fitness: Dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def n_arrays(self) -> int:
        """Number of ACBs in the platform."""
        return len(self.acbs)

    @property
    def spec(self) -> GenotypeSpec:
        """Genotype spec matching the platform's array geometry."""
        return self.geometry.spec()

    @property
    def backend_name(self) -> str:
        """Registry name of the arrays' evaluation backend."""
        return self.acbs[0].array.backend_name

    def acb(self, index: int) -> ArrayControlBlock:
        """The ACB at position ``index``."""
        if not 0 <= index < self.n_arrays:
            raise IndexError(f"ACB index {index} out of range [0, {self.n_arrays})")
        return self.acbs[index]

    def timing_model(self) -> EvolutionTimingModel:
        """An evolution-time model calibrated to this platform's engine."""
        return EvolutionTimingModel.from_engine(
            self.engine, array_latency_cycles=self.acbs[0].latency_cycles
        )

    def resource_report(self) -> ResourceReport:
        """Resource utilisation report for the current number of arrays (§VI.A)."""
        return self.resource_model.report(self.n_arrays)

    def random_genotype(self) -> Genotype:
        """Draw a random candidate circuit with the platform's RNG."""
        return Genotype.random(self.spec, self.rng)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure_array(self, index: int, genotype: Genotype) -> Tuple[int, float]:
        """Place ``genotype`` on array ``index``; returns (PE writes, engine time)."""
        return self.acb(index).configure(genotype)

    def configure_all(self, genotype: Genotype) -> Tuple[int, float]:
        """Place the same circuit on every array (e.g. to enter TMR operation)."""
        total_writes = 0
        total_time = 0.0
        for acb in self.acbs:
            writes, elapsed = acb.configure(genotype)
            total_writes += writes
            total_time += elapsed
        return total_writes, total_time

    def set_bypass(self, index: int, bypassed: bool) -> None:
        """Bypass (or re-insert) stage ``index`` of the cascade."""
        self.acb(index).set_bypass(bypassed)

    def set_processing_mode(self, mode: ProcessingMode) -> None:
        """Select the mission-time processing mode."""
        if not isinstance(mode, ProcessingMode):
            raise TypeError(f"expected ProcessingMode, got {type(mode)!r}")
        self.processing_mode = mode

    # ------------------------------------------------------------------ #
    # Reference / image management
    # ------------------------------------------------------------------ #
    def store_image(self, key: str, image: np.ndarray,
                    region: MemoryRegion = MemoryRegion.FLASH) -> None:
        """Store a training/reference/calibration image in external memory."""
        self.memory.store(region, key, np.asarray(image))

    def load_image(self, key: str, region: MemoryRegion = MemoryRegion.FLASH) -> np.ndarray:
        """Load an image previously stored with :meth:`store_image`."""
        return self.memory.load(region, key)

    def erase_image(self, key: str, region: MemoryRegion = MemoryRegion.FLASH) -> None:
        """Erase a stored image (models freeing the reference to save space)."""
        self.memory.erase(region, key)

    def set_reference(self, index: int, reference: Optional[np.ndarray]) -> None:
        """Load a reference image into the fitness unit of array ``index``."""
        self.acb(index).set_reference(reference)

    # ------------------------------------------------------------------ #
    # Mission-time processing
    # ------------------------------------------------------------------ #
    def process(self, image_or_images) -> Union[np.ndarray, List[np.ndarray]]:
        """Process input(s) according to the selected processing mode.

        * ``CASCADED`` / ``BYPASS`` — a single image flows through the stage
          chain; bypassed stages forward it unchanged.
        * ``PARALLEL`` — a single image is filtered by every array; the
          pixel-voted output is returned.
        * ``INDEPENDENT`` — a sequence of images (one per array) is filtered
          independently and the list of outputs is returned.
        """
        mode = self.processing_mode
        if mode in (ProcessingMode.CASCADED, ProcessingMode.BYPASS):
            return self.process_cascade(image_or_images)
        if mode == ProcessingMode.PARALLEL:
            return self.process_parallel(image_or_images, vote=True)
        if mode == ProcessingMode.INDEPENDENT:
            return self.process_independent(image_or_images)
        raise RuntimeError(f"unhandled processing mode {mode}")  # pragma: no cover

    def process_cascade(self, image: np.ndarray,
                        stages: Optional[Sequence[int]] = None) -> np.ndarray:
        """Filter ``image`` through the cascade of stages.

        Parameters
        ----------
        image:
            Input image of the first stage.
        stages:
            Optional subset (and order) of stage indices; defaults to all
            stages in stack order.
        """
        data = np.asarray(image)
        indices = list(range(self.n_arrays)) if stages is None else list(stages)
        for index in indices:
            data = self.acb(index).process(data)
        return data

    def cascade_stage_outputs(self, image: np.ndarray) -> List[np.ndarray]:
        """Outputs of every cascade stage (used by the per-stage fitness figures)."""
        outputs: List[np.ndarray] = []
        data = np.asarray(image)
        for acb in self.acbs:
            data = acb.process(data)
            outputs.append(data)
        return outputs

    def process_parallel(self, image: np.ndarray, vote: bool = False):
        """Filter ``image`` on every array simultaneously.

        Returns the list of per-array outputs, or the pixel-voted output
        when ``vote`` is true (the TMR arrangement of Fig. 9).
        """
        outputs = [acb.shadow_process(image) for acb in self.acbs]
        if vote:
            return self.pixel_voter.vote(outputs)
        return outputs

    def process_independent(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Filter one image per array, independently."""
        if len(images) != self.n_arrays:
            raise ValueError(
                f"independent mode needs one image per array "
                f"({self.n_arrays}), got {len(images)}"
            )
        return [acb.shadow_process(image) for acb, image in zip(self.acbs, images)]

    # ------------------------------------------------------------------ #
    # Fault handling / calibration
    # ------------------------------------------------------------------ #
    def find_sensitive_position(
        self,
        array_index: int,
        image: np.ndarray,
        exclude_output_pe: bool = True,
    ) -> Tuple[int, int]:
        """Find a PE position whose failure disturbs the configured circuit.

        Faults in PEs the evolved circuit does not route through are
        functionally benign (the paper's systematic fault analysis observes
        exactly this position dependence), so fault-injection experiments
        that want a *detectable* fault need a sensitive position.  This
        helper tries each PE position in turn with a temporary PE-level
        fault and returns the first one that changes the array's output on
        ``image``.

        Parameters
        ----------
        array_index:
            Array to probe (its circuit must already be configured).
        image:
            Probe input image.
        exclude_output_pe:
            When ``True``, the PE directly driving the array output (last
            column of the selected output row) is tried last: faults there
            are maximally disruptive but cannot be routed around without
            moving the output, which makes them the least interesting
            recovery scenario.

        Returns
        -------
        (row, col)
            A sensitive position.  Falls back to the output-path PE when no
            other position affects the output.
        """
        acb = self.acb(array_index)
        if acb.genotype is None:
            raise RuntimeError("the target array has no configured circuit")
        image = np.asarray(image)
        baseline = acb.shadow_process(image)
        output_pe = (int(acb.genotype.output_select), self.geometry.cols - 1)

        candidates = [
            (row, col)
            for row in range(self.geometry.rows)
            for col in range(self.geometry.cols)
            if (row, col) != output_pe
        ]
        if not exclude_output_pe:
            candidates.insert(0, output_pe)

        for position in candidates:
            acb.array.inject_fault(position, seed=1)
            disturbed = acb.array.process(image, acb.genotype)
            acb.array.clear_fault(position)
            if not np.array_equal(disturbed, baseline):
                acb.sync_faults()
                return position
        acb.sync_faults()
        return output_pe

    def inject_permanent_fault(self, array_index: int, row: int, col: int) -> RegionAddress:
        """Inject an LPD at a PE position (the paper's PE-level fault model)."""
        address = RegionAddress(array_index, row, col)
        self.fault_injector.inject_lpd(address)
        self.acb(array_index).sync_faults()
        return address

    def inject_transient_fault(self, array_index: int, row: int, col: int) -> RegionAddress:
        """Inject an SEU (configuration corruption) at a PE position."""
        address = RegionAddress(array_index, row, col)
        self.fault_injector.inject_seu(address)
        self.acb(array_index).sync_faults()
        return address

    def scrub_array(self, array_index: int) -> ScrubReport:
        """Scrub one array's configuration; repairs SEUs, not LPDs."""
        report = self.scrubber.scrub_array(array_index)
        self.acb(array_index).sync_faults()
        return report

    def scrub_all(self) -> ScrubReport:
        """Scrub the whole reconfigurable fabric."""
        report = self.scrubber.scrub()
        for acb in self.acbs:
            acb.sync_faults()
        return report

    def calibrate(self, calibration_image: np.ndarray,
                  reference_image: np.ndarray) -> Dict[int, float]:
        """Record each array's fitness on a calibration image (§V.A step b).

        The stored values are the baseline the self-healing strategy
        compares against at the next calibration to detect faults.
        """
        calibration_image = np.asarray(calibration_image)
        reference_image = np.asarray(reference_image)
        self._calibration_fitness = {}
        for acb in self.acbs:
            output = acb.shadow_process(calibration_image)
            self._calibration_fitness[acb.index] = sae(output, reference_image)
        return dict(self._calibration_fitness)

    @property
    def calibration_fitness(self) -> Dict[int, float]:
        """Most recent calibration snapshot (empty before :meth:`calibrate`)."""
        return dict(self._calibration_fitness)

    def check_calibration(self, calibration_image: np.ndarray,
                          reference_image: np.ndarray,
                          tolerance: float = 0.0) -> Dict[int, bool]:
        """Re-evaluate calibration fitness and flag arrays that diverge.

        Returns ``{array_index: changed}`` where ``changed`` is ``True`` when
        the array's fitness differs from the stored baseline by more than
        ``tolerance`` — the §V.A fault-detection step.
        """
        if not self._calibration_fitness:
            raise RuntimeError("no calibration snapshot; call calibrate() first")
        calibration_image = np.asarray(calibration_image)
        reference_image = np.asarray(reference_image)
        flags: Dict[int, bool] = {}
        for acb in self.acbs:
            output = acb.shadow_process(calibration_image)
            fitness = sae(output, reference_image)
            baseline = self._calibration_fitness[acb.index]
            flags[acb.index] = abs(fitness - baseline) > tolerance
        return flags
