"""The paper's primary contribution: the multi-array evolvable HW platform.

Layered on top of the substrates (:mod:`repro.array`, :mod:`repro.fpga`,
:mod:`repro.soc`, :mod:`repro.imaging`, :mod:`repro.timing`), this package
provides:

* :class:`~repro.core.platform.EvolvableHardwarePlatform` — the scalable
  stack of Array Control Blocks with its processing modes;
* :class:`~repro.core.acb.ArrayControlBlock` — one array plus its control,
  FIFO-alignment and hardware fitness logic;
* the evolution drivers of §IV.B (:mod:`repro.core.evolution`) and the new
  two-level-mutation EA of §VI.B (:mod:`repro.core.two_level_ea`);
* the TMR voters (:mod:`repro.core.voter`) and the self-healing strategies
  of §V (:mod:`repro.core.self_healing`);
* the Fig. 11 generation scheduler (:mod:`repro.core.scheduler`).
"""

from repro.core.acb import ArrayControlBlock, FitnessUnit
from repro.core.evolution import (
    ArrayEvalContext,
    CascadedEvolution,
    EvolutionDriver,
    ImitationEvolution,
    IndependentEvolution,
    ParallelEvolution,
    PlatformEvolutionResult,
    evaluate_batch,
)
from repro.core.modes import (
    CascadeFitnessMode,
    CascadeSchedule,
    CascadeStyle,
    EvolutionMode,
    FitnessSource,
    ProcessingMode,
)
from repro.core.platform import EvolvableHardwarePlatform
from repro.core.scheduler import GenerationScheduler, GenerationTiming
from repro.core.self_healing import (
    CascadedSelfHealing,
    FaultClass,
    HealingEvent,
    HealingReport,
    TmrSelfHealing,
)
from repro.core.two_level_ea import TwoLevelMutationEvolution
from repro.core.voter import FitnessVoter, PixelVoter, VoteResult

__all__ = [
    "ArrayControlBlock",
    "ArrayEvalContext",
    "FitnessUnit",
    "CascadedEvolution",
    "EvolutionDriver",
    "ImitationEvolution",
    "IndependentEvolution",
    "ParallelEvolution",
    "PlatformEvolutionResult",
    "evaluate_batch",
    "CascadeFitnessMode",
    "CascadeSchedule",
    "CascadeStyle",
    "EvolutionMode",
    "FitnessSource",
    "ProcessingMode",
    "EvolvableHardwarePlatform",
    "GenerationScheduler",
    "GenerationTiming",
    "CascadedSelfHealing",
    "FaultClass",
    "HealingEvent",
    "HealingReport",
    "TmrSelfHealing",
    "TwoLevelMutationEvolution",
    "FitnessVoter",
    "PixelVoter",
    "VoteResult",
]
