"""Sliding-window extraction.

The hardware platform rebuilds the 3x3 pixel window around the current
output pixel with three image-line FIFOs (one per window row).  Every array
input is fed, through a 9-to-1 multiplexer, with one of the nine pixels of
that window (paper §III.A).

Here the window is materialised as nine whole-image planes, one per window
position, so that a candidate circuit can be evaluated with purely
vectorised operations: plane ``k`` holds, for every output pixel, the value
of window pixel ``k``.  Border pixels use edge replication, the natural
behaviour of line buffers that repeat the first/last valid line/column.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WINDOW_SIZE", "N_WINDOW_PIXELS", "extract_windows", "window_offsets"]

#: Window side (3x3 windows, as in the paper).
WINDOW_SIZE = 3

#: Number of selectable window pixels (the 9-to-1 input multiplexers).
N_WINDOW_PIXELS = WINDOW_SIZE * WINDOW_SIZE


def window_offsets() -> tuple:
    """Return the (dy, dx) offset of each window plane, in row-major order.

    Index 0 is the top-left neighbour, index 4 the centre pixel and index 8
    the bottom-right neighbour.
    """
    half = WINDOW_SIZE // 2
    return tuple(
        (dy, dx)
        for dy in range(-half, half + 1)
        for dx in range(-half, half + 1)
    )


def extract_windows(image: np.ndarray) -> np.ndarray:
    """Expand ``image`` into the nine shifted window planes.

    Parameters
    ----------
    image:
        2-D uint8 grayscale image of shape ``(H, W)``.

    Returns
    -------
    numpy.ndarray
        uint8 array of shape ``(9, H, W)``; ``planes[k][y, x]`` is the value
        of window pixel ``k`` for the window centred at ``(y, x)``, with edge
        replication at the borders.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise TypeError(f"expected uint8 image, got dtype {image.dtype}")
    h, w = image.shape
    if h < WINDOW_SIZE or w < WINDOW_SIZE:
        raise ValueError(
            f"image must be at least {WINDOW_SIZE}x{WINDOW_SIZE}, got {image.shape}"
        )
    half = WINDOW_SIZE // 2
    padded = np.pad(image, half, mode="edge")
    planes = np.empty((N_WINDOW_PIXELS, h, w), dtype=np.uint8)
    for k, (dy, dx) in enumerate(window_offsets()):
        planes[k] = padded[half + dy : half + dy + h, half + dx : half + dx + w]
    return planes
