"""Library of Processing Element functions.

The paper (building on the single-array system of Otero et al., AHS 2011)
uses a library of presynthesised partial bitstreams, one per PE function.
"By eliminating redundancies and symmetries, the library of available PEs
was reduced to 16 different elements, which allows the corresponding gene
coding in 4 bits" (§III.A).

Every PE has two inputs — west (W) and north (N) — and one output that is
propagated to both the south and east neighbours.  The 16 functions below
follow the function set customarily used for CGP-evolved window image
filters (constants, pass-throughs, logic, saturated arithmetic, min/max
order statistics), which is sufficient to express median-like denoisers,
smoothing kernels and edge detectors.

All functions are implemented as vectorised NumPy operations over whole
image planes (uint8 in, uint8 out), which is what makes intrinsic-evolution
style experiments with many thousands of candidate evaluations tractable in
pure Python.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "PEFunction",
    "N_FUNCTIONS",
    "apply_function",
    "function_name",
    "function_table",
    "FUNCTION_ARITY",
]


class PEFunction(IntEnum):
    """Enumeration of the 16 PE functions (gene value = enum value)."""

    CONST_MAX = 0       #: constant 255
    IDENTITY_W = 1      #: pass west input through
    IDENTITY_N = 2      #: pass north input through
    INVERT_W = 3        #: 255 - W
    OR = 4              #: W | N
    AND = 5             #: W & N
    XOR = 6             #: W ^ N
    SHIFT_R1_W = 7      #: W >> 1
    SHIFT_R2_W = 8      #: W >> 2
    ADD_SAT = 9         #: min(W + N, 255)
    SUB_ABS = 10        #: |W - N|
    AVERAGE = 11        #: (W + N) >> 1
    MAX = 12            #: max(W, N)
    MIN = 13            #: min(W, N)
    SWAP_NIBBLES_W = 14 #: nibble swap of W
    THRESHOLD = 15      #: 255 where W > N else 0


#: Number of functions in the library; genes are ``ceil(log2(N_FUNCTIONS))`` = 4 bits.
N_FUNCTIONS = len(PEFunction)

#: Arity of each function: 1 means only the W input is used, 2 means both.
#: (Data is still always propagated through the PE regardless of arity,
#: matching the hardware where unused inputs are simply not routed to the
#: operator.)
FUNCTION_ARITY: Dict[PEFunction, int] = {
    PEFunction.CONST_MAX: 0,
    PEFunction.IDENTITY_W: 1,
    PEFunction.IDENTITY_N: 1,
    PEFunction.INVERT_W: 1,
    PEFunction.OR: 2,
    PEFunction.AND: 2,
    PEFunction.XOR: 2,
    PEFunction.SHIFT_R1_W: 1,
    PEFunction.SHIFT_R2_W: 1,
    PEFunction.ADD_SAT: 2,
    PEFunction.SUB_ABS: 2,
    PEFunction.AVERAGE: 2,
    PEFunction.MAX: 2,
    PEFunction.MIN: 2,
    PEFunction.SWAP_NIBBLES_W: 1,
    PEFunction.THRESHOLD: 2,
}


def _const_max(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.full_like(w, 255)


def _identity_w(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return w.copy()


def _identity_n(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return n.copy()


def _invert_w(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return (255 - w.astype(np.int16)).astype(np.uint8)


def _or(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.bitwise_or(w, n)


def _and(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.bitwise_and(w, n)


def _xor(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.bitwise_xor(w, n)


def _shift_r1_w(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.right_shift(w, 1)


def _shift_r2_w(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.right_shift(w, 2)


def _add_sat(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    total = w.astype(np.int16) + n.astype(np.int16)
    return np.minimum(total, 255).astype(np.uint8)


def _sub_abs(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    diff = np.abs(w.astype(np.int16) - n.astype(np.int16))
    return diff.astype(np.uint8)


def _average(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    total = w.astype(np.int16) + n.astype(np.int16)
    return np.right_shift(total, 1).astype(np.uint8)


def _max(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.maximum(w, n)


def _min(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.minimum(w, n)


def _swap_nibbles_w(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    hi = np.right_shift(w, 4)
    lo = np.bitwise_and(w, 0x0F)
    return np.bitwise_or(np.left_shift(lo, 4), hi).astype(np.uint8)


def _threshold(w: np.ndarray, n: np.ndarray) -> np.ndarray:
    return np.where(w > n, np.uint8(255), np.uint8(0))


_FUNCTION_IMPLS: Dict[PEFunction, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    PEFunction.CONST_MAX: _const_max,
    PEFunction.IDENTITY_W: _identity_w,
    PEFunction.IDENTITY_N: _identity_n,
    PEFunction.INVERT_W: _invert_w,
    PEFunction.OR: _or,
    PEFunction.AND: _and,
    PEFunction.XOR: _xor,
    PEFunction.SHIFT_R1_W: _shift_r1_w,
    PEFunction.SHIFT_R2_W: _shift_r2_w,
    PEFunction.ADD_SAT: _add_sat,
    PEFunction.SUB_ABS: _sub_abs,
    PEFunction.AVERAGE: _average,
    PEFunction.MAX: _max,
    PEFunction.MIN: _min,
    PEFunction.SWAP_NIBBLES_W: _swap_nibbles_w,
    PEFunction.THRESHOLD: _threshold,
}


def function_table() -> Tuple[Callable[[np.ndarray, np.ndarray], np.ndarray], ...]:
    """Return the function implementations indexed by gene value."""
    return tuple(_FUNCTION_IMPLS[PEFunction(i)] for i in range(N_FUNCTIONS))


def function_name(gene: int) -> str:
    """Human-readable name of the function selected by ``gene``."""
    return PEFunction(int(gene)).name


def apply_function(gene: int, west: np.ndarray, north: np.ndarray) -> np.ndarray:
    """Apply the PE function selected by ``gene`` to the two input planes.

    Parameters
    ----------
    gene:
        Function gene value in ``[0, 15]``.
    west, north:
        uint8 arrays of identical shape (whole-image planes, or scalars
        wrapped in 0-d arrays for single-pixel tests).

    Returns
    -------
    numpy.ndarray
        uint8 array of the same shape.
    """
    gene = int(gene)
    if not 0 <= gene < N_FUNCTIONS:
        raise ValueError(f"function gene must be in [0, {N_FUNCTIONS - 1}], got {gene}")
    west = np.asarray(west, dtype=np.uint8)
    north = np.asarray(north, dtype=np.uint8)
    if west.shape != north.shape:
        raise ValueError(f"input shapes differ: {west.shape} vs {north.shape}")
    return _FUNCTION_IMPLS[PEFunction(gene)](west, north)
