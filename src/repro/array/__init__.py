"""Systolic processing-array substrate.

This package is the functional model of the reconfigurable circuit of the
paper's platform: a 2-D mesh of fine-grain Processing Elements (PEs) working
systolically on a 3x3 sliding window of an 8-bit grayscale image.

* :mod:`repro.array.pe_library` — the library of 16 presynthesised PE
  functions (the paper reduces the library to 16 elements so a function is
  coded in a 4-bit gene).
* :mod:`repro.array.genotype` — the CGP-style genotype: one function gene
  per PE, one 9-to-1 input-mux gene per array input, one output-select gene.
* :mod:`repro.array.window` — 3x3 sliding-window extraction with edge
  replication (the FIFO line buffers of the hardware).
* :mod:`repro.array.planes` — packed contiguous plane storage
  (:class:`~repro.array.planes.PlaneArena`) used by the ``compiled``
  evaluation backend.
* :mod:`repro.array.systolic_array` — the vectorised functional simulator of
  the array, including per-PE fault overrides and the pipeline latency model.
* :mod:`repro.array.processing_element` — the single-PE model used by the
  fabric/bitstream layer and by fine-grained tests.
"""

from repro.array.genotype import Genotype, GenotypeSpec
from repro.array.pe_library import (
    N_FUNCTIONS,
    PEFunction,
    apply_function,
    function_name,
    function_table,
)
from repro.array.planes import PlaneArena
from repro.array.processing_element import ProcessingElement
from repro.array.systolic_array import ArrayGeometry, SystolicArray
from repro.array.window import WINDOW_SIZE, extract_windows

__all__ = [
    "Genotype",
    "GenotypeSpec",
    "N_FUNCTIONS",
    "PEFunction",
    "apply_function",
    "function_name",
    "function_table",
    "PlaneArena",
    "ProcessingElement",
    "ArrayGeometry",
    "SystolicArray",
    "WINDOW_SIZE",
    "extract_windows",
]
