"""Single Processing Element model.

The systolic-array simulator in :mod:`repro.array.systolic_array` evaluates
whole candidate circuits with vectorised operations and does not build PE
objects; this class exists for the layers that reason about *individual*
reconfigurable regions — the fabric / partial-bitstream model, fault
injection, and fine-grained unit tests.

"Every PE within the array matrix can perform one operation with one or two
inputs.  Inputs are either the west (W) or the north (N) sides, or both,
and data is always propagated, after a register that allows pipelined
execution, to both the south (S) and east (E) outputs." (paper §III.A)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.array.pe_library import FUNCTION_ARITY, N_FUNCTIONS, PEFunction, apply_function

__all__ = ["ProcessingElement"]


@dataclass
class ProcessingElement:
    """One reconfigurable PE at a fixed array position.

    Attributes
    ----------
    row, col:
        Position within the array mesh.
    function_gene:
        Currently configured function (``0..15``).
    faulty:
        When ``True`` the PE's output is garbage (the paper's PE-level fault
        model: a dummy PE "generates a random value in its output").
    fault_rng:
        Generator used to draw the garbage output of a faulty PE.
    """

    row: int
    col: int
    function_gene: int = int(PEFunction.IDENTITY_W)
    faulty: bool = False
    fault_rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("PE position must be non-negative")
        self.configure(self.function_gene)

    @property
    def function(self) -> PEFunction:
        """The configured function as an enum member."""
        return PEFunction(self.function_gene)

    @property
    def arity(self) -> int:
        """Number of inputs actually consumed by the configured function."""
        return FUNCTION_ARITY[self.function]

    def configure(self, function_gene: int) -> None:
        """Reconfigure the PE with a new function gene.

        This is the functional effect of writing the corresponding partial
        bitstream; the timing cost is accounted by the reconfiguration
        engine, not here.
        """
        function_gene = int(function_gene)
        if not 0 <= function_gene < N_FUNCTIONS:
            raise ValueError(
                f"function gene must be in [0, {N_FUNCTIONS - 1}], got {function_gene}"
            )
        self.function_gene = function_gene

    def inject_fault(self, rng: Optional[np.random.Generator] = None) -> None:
        """Mark this PE as permanently damaged (LPD at this position)."""
        self.faulty = True
        self.fault_rng = rng if rng is not None else np.random.default_rng()

    def clear_fault(self) -> None:
        """Repair the PE (e.g. after relocation to a spare region)."""
        self.faulty = False
        self.fault_rng = None

    def compute(self, west: np.ndarray, north: np.ndarray) -> np.ndarray:
        """Produce the PE output for the given input planes.

        A healthy PE applies its configured function; a faulty PE returns
        uniformly random pixels of the same shape, uncorrelated with its
        inputs, which is the paper's dummy-PE fault model.
        """
        west = np.asarray(west, dtype=np.uint8)
        north = np.asarray(north, dtype=np.uint8)
        if west.shape != north.shape:
            raise ValueError(f"input shapes differ: {west.shape} vs {north.shape}")
        if self.faulty:
            rng = self.fault_rng if self.fault_rng is not None else np.random.default_rng()
            return rng.integers(0, 256, size=west.shape, dtype=np.uint8)
        return apply_function(self.function_gene, west, north)
