"""Single Processing Element model.

The systolic-array simulator in :mod:`repro.array.systolic_array` evaluates
whole candidate circuits with vectorised operations and does not build PE
objects; this class exists for the layers that reason about *individual*
reconfigurable regions — the fabric / partial-bitstream model, fault
injection, and fine-grained unit tests.

"Every PE within the array matrix can perform one operation with one or two
inputs.  Inputs are either the west (W) or the north (N) sides, or both,
and data is always propagated, after a register that allows pipelined
execution, to both the south (S) and east (E) outputs." (paper §III.A)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.array.pe_library import FUNCTION_ARITY, N_FUNCTIONS, PEFunction, apply_function

__all__ = ["ProcessingElement"]

#: Stream tag mixed into the derived per-position fault seed used when a PE
#: is marked faulty without an explicit generator.  The derived entropy is
#: ``SeedSequence([_PE_FAULT_STREAM_TAG, row, col])``, so the implicit
#: stream of a PE is stable across runs and distinct per position — part of
#: the documented RNG determinism contract (``docs/architecture.md``).
_PE_FAULT_STREAM_TAG = 0x5EEDFA17


@dataclass
class ProcessingElement:
    """One reconfigurable PE at a fixed array position.

    Attributes
    ----------
    row, col:
        Position within the array mesh.
    function_gene:
        Currently configured function (``0..15``).
    faulty:
        When ``True`` the PE's output is garbage (the paper's PE-level fault
        model: a dummy PE "generates a random value in its output").
    fault_rng:
        Generator used to draw the garbage output of a faulty PE.
    """

    row: int
    col: int
    function_gene: int = int(PEFunction.IDENTITY_W)
    faulty: bool = False
    fault_rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("PE position must be non-negative")
        self.configure(self.function_gene)

    @property
    def function(self) -> PEFunction:
        """The configured function as an enum member."""
        return PEFunction(self.function_gene)

    @property
    def arity(self) -> int:
        """Number of inputs actually consumed by the configured function."""
        return FUNCTION_ARITY[self.function]

    def configure(self, function_gene: int) -> None:
        """Reconfigure the PE with a new function gene.

        This is the functional effect of writing the corresponding partial
        bitstream; the timing cost is accounted by the reconfiguration
        engine, not here.
        """
        function_gene = int(function_gene)
        if not 0 <= function_gene < N_FUNCTIONS:
            raise ValueError(
                f"function gene must be in [0, {N_FUNCTIONS - 1}], got {function_gene}"
            )
        self.function_gene = function_gene

    def _derived_fault_rng(self) -> np.random.Generator:
        """Deterministic per-position garbage stream for the implicit path.

        Derived from the PE position (``SeedSequence([tag, row, col])``) so
        fault behaviour stays reproducible even when no generator was
        supplied; the owning :class:`~repro.array.systolic_array.SystolicArray`
        normally provides a seeded ``fault_rng`` instead.
        """
        return np.random.default_rng(
            np.random.SeedSequence([_PE_FAULT_STREAM_TAG, self.row, self.col])
        )

    def inject_fault(self, rng: Optional[np.random.Generator] = None) -> None:
        """Mark this PE as permanently damaged (LPD at this position).

        Pass the owning array's seeded generator (or any explicitly seeded
        one) so the garbage stream is part of the experiment spec.  Calling
        without ``rng`` is deprecated: instead of the old irreproducible
        unseeded fallback, the stream is now derived deterministically from
        the PE position.
        """
        self.faulty = True
        if rng is None:
            warnings.warn(
                "ProcessingElement.inject_fault() without an rng is deprecated: "
                "the fault stream is now derived from the PE position instead "
                "of an unseeded generator; pass a seeded generator so the "
                "stream identity is part of the experiment spec",
                DeprecationWarning,
                stacklevel=2,
            )
            rng = self._derived_fault_rng()
        self.fault_rng = rng

    def clear_fault(self) -> None:
        """Repair the PE (e.g. after relocation to a spare region)."""
        self.faulty = False
        self.fault_rng = None

    def compute(self, west: np.ndarray, north: np.ndarray) -> np.ndarray:
        """Produce the PE output for the given input planes.

        A healthy PE applies its configured function; a faulty PE returns
        uniformly random pixels of the same shape, uncorrelated with its
        inputs, which is the paper's dummy-PE fault model.  The garbage is
        drawn from :attr:`fault_rng`; a PE made faulty without one (e.g.
        ``ProcessingElement(..., faulty=True)``) falls back to the derived
        per-position stream — deprecated but deterministic — and keeps the
        generator so repeated computations advance one stream.
        """
        west = np.asarray(west, dtype=np.uint8)
        north = np.asarray(north, dtype=np.uint8)
        if west.shape != north.shape:
            raise ValueError(f"input shapes differ: {west.shape} vs {north.shape}")
        if self.faulty:
            if self.fault_rng is None:
                warnings.warn(
                    "computing a faulty ProcessingElement without a fault_rng is "
                    "deprecated: the garbage stream is now derived from the PE "
                    "position instead of an unseeded generator; inject the fault "
                    "with a seeded generator to silence this",
                    DeprecationWarning,
                    stacklevel=2,
                )
                self.fault_rng = self._derived_fault_rng()
            return self.fault_rng.integers(0, 256, size=west.shape, dtype=np.uint8)
        return apply_function(self.function_gene, west, north)
