"""CGP-style genotype for the evolvable systolic array.

A genotype "is the set of coded values that defines exactly one solution
and allows to create the phenotype, i.e. the implementation of the circuit
described by the genotype" (paper §III.A).  For a ``rows x cols`` array:

* one **function gene** per PE, valued ``0..15`` (4 bits each) — selects
  which presynthesised partial bitstream is placed at that PE position;
* one **west-mux gene** per array row and one **north-mux gene** per array
  column, valued ``0..8`` — selects which of the nine sliding-window pixels
  feeds that array input (the 9-to-1 input multiplexers);
* one **output-select gene**, valued ``0..rows-1`` — selects which of the
  east-side outputs is the array output (the output multiplexer).

Only function-gene changes require partial reconfiguration of the fabric;
the multiplexer genes live in ACB control registers and are written over
the bus.  The distinction matters for the evolution-time model (Figs. 12-14
report time as a function of the mutation rate precisely because mutations
of function genes dominate the reconfiguration cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.array.pe_library import N_FUNCTIONS
from repro.array.window import N_WINDOW_PIXELS

__all__ = ["GenotypeSpec", "Genotype", "GeneKind"]


class GeneKind:
    """Symbolic names for the three gene categories."""

    FUNCTION = "function"
    WEST_MUX = "west_mux"
    NORTH_MUX = "north_mux"
    OUTPUT = "output"


@dataclass(frozen=True)
class GenotypeSpec:
    """Shape and alphabet of a genotype for a given array geometry.

    Parameters
    ----------
    rows, cols:
        Array dimensions in PEs (paper: 4x4).
    """

    rows: int = 4
    cols: int = 4

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"array must have at least 1x1 PEs, got {self.rows}x{self.cols}")

    @property
    def n_pes(self) -> int:
        """Number of processing elements (function genes)."""
        return self.rows * self.cols

    @property
    def n_west_inputs(self) -> int:
        """Number of west-side array inputs (one per row)."""
        return self.rows

    @property
    def n_north_inputs(self) -> int:
        """Number of north-side array inputs (one per column)."""
        return self.cols

    @property
    def n_mux_genes(self) -> int:
        """Total number of input-mux genes."""
        return self.n_west_inputs + self.n_north_inputs

    @property
    def n_genes(self) -> int:
        """Total gene count: functions + input muxes + output select."""
        return self.n_pes + self.n_mux_genes + 1

    def gene_bits(self) -> int:
        """Total genotype length in bits under the paper's 4-bit coding.

        Function genes use 4 bits (16 functions), mux genes use 4 bits
        (9 window pixels, rounded up), and the output-select gene uses as
        many bits as needed for ``rows`` values.
        """
        out_bits = max(1, int(np.ceil(np.log2(max(2, self.rows)))))
        return 4 * self.n_pes + 4 * self.n_mux_genes + out_bits

    def gene_kind(self, index: int) -> str:
        """Map a flat gene index to its :class:`GeneKind` category."""
        if not 0 <= index < self.n_genes:
            raise IndexError(f"gene index {index} out of range [0, {self.n_genes})")
        if index < self.n_pes:
            return GeneKind.FUNCTION
        index -= self.n_pes
        if index < self.n_west_inputs:
            return GeneKind.WEST_MUX
        index -= self.n_west_inputs
        if index < self.n_north_inputs:
            return GeneKind.NORTH_MUX
        return GeneKind.OUTPUT

    def gene_alphabet_size(self, index: int) -> int:
        """Number of legal values of the gene at flat index ``index``."""
        kind = self.gene_kind(index)
        if kind == GeneKind.FUNCTION:
            return N_FUNCTIONS
        if kind in (GeneKind.WEST_MUX, GeneKind.NORTH_MUX):
            return N_WINDOW_PIXELS
        return self.rows


@dataclass
class Genotype:
    """A complete candidate-circuit description.

    Attributes
    ----------
    spec:
        The :class:`GenotypeSpec` describing the array geometry.
    function_genes:
        ``(rows, cols)`` uint8 array of PE function genes.
    west_mux:
        ``(rows,)`` uint8 array of west-input window selections.
    north_mux:
        ``(cols,)`` uint8 array of north-input window selections.
    output_select:
        Row index (east side) routed to the array output.
    """

    spec: GenotypeSpec
    function_genes: np.ndarray
    west_mux: np.ndarray
    north_mux: np.ndarray
    output_select: int

    def __post_init__(self) -> None:
        self.function_genes = np.asarray(self.function_genes, dtype=np.uint8)
        self.west_mux = np.asarray(self.west_mux, dtype=np.uint8)
        self.north_mux = np.asarray(self.north_mux, dtype=np.uint8)
        self.output_select = int(self.output_select)
        self.validate()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        spec: GenotypeSpec = GenotypeSpec(),
        rng: Union[int, np.random.Generator, None] = None,
    ) -> "Genotype":
        """Draw a uniformly random genotype (the first-generation candidate)."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return cls(
            spec=spec,
            function_genes=rng.integers(
                0, N_FUNCTIONS, size=(spec.rows, spec.cols), dtype=np.uint8
            ),
            west_mux=rng.integers(0, N_WINDOW_PIXELS, size=spec.rows, dtype=np.uint8),
            north_mux=rng.integers(0, N_WINDOW_PIXELS, size=spec.cols, dtype=np.uint8),
            output_select=int(rng.integers(0, spec.rows)),
        )

    @classmethod
    def identity(cls, spec: GenotypeSpec = GenotypeSpec()) -> "Genotype":
        """A pass-through circuit: every PE forwards its west input and the
        west inputs select the window centre pixel.

        Useful as a calibration circuit and as a known-good phenotype in
        tests (its output equals its input image exactly).
        """
        from repro.array.pe_library import PEFunction
        from repro.array.window import N_WINDOW_PIXELS

        centre = N_WINDOW_PIXELS // 2
        return cls(
            spec=spec,
            function_genes=np.full(
                (spec.rows, spec.cols), int(PEFunction.IDENTITY_W), dtype=np.uint8
            ),
            west_mux=np.full(spec.rows, centre, dtype=np.uint8),
            north_mux=np.full(spec.cols, centre, dtype=np.uint8),
            output_select=0,
        )

    # ------------------------------------------------------------------ #
    # Validation and flat-vector views
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` if any gene is out of its alphabet."""
        spec = self.spec
        if self.function_genes.shape != (spec.rows, spec.cols):
            raise ValueError(
                f"function_genes shape {self.function_genes.shape} does not match "
                f"array geometry {(spec.rows, spec.cols)}"
            )
        if self.west_mux.shape != (spec.rows,):
            raise ValueError(f"west_mux must have {spec.rows} entries")
        if self.north_mux.shape != (spec.cols,):
            raise ValueError(f"north_mux must have {spec.cols} entries")
        if self.function_genes.max(initial=0) >= N_FUNCTIONS:
            raise ValueError("function gene out of range")
        if self.west_mux.max(initial=0) >= N_WINDOW_PIXELS:
            raise ValueError("west_mux gene out of range")
        if self.north_mux.max(initial=0) >= N_WINDOW_PIXELS:
            raise ValueError("north_mux gene out of range")
        if not 0 <= self.output_select < spec.rows:
            raise ValueError(
                f"output_select must be in [0, {spec.rows}), got {self.output_select}"
            )

    def copy(self) -> "Genotype":
        """Deep copy of the genotype."""
        return Genotype(
            spec=self.spec,
            function_genes=self.function_genes.copy(),
            west_mux=self.west_mux.copy(),
            north_mux=self.north_mux.copy(),
            output_select=self.output_select,
        )

    def to_flat(self) -> np.ndarray:
        """Flatten to a 1-D integer gene vector (function genes first, then
        west muxes, north muxes and the output gene)."""
        return np.concatenate(
            [
                self.function_genes.reshape(-1).astype(np.int64),
                self.west_mux.astype(np.int64),
                self.north_mux.astype(np.int64),
                np.array([self.output_select], dtype=np.int64),
            ]
        )

    @classmethod
    def from_flat(cls, spec: GenotypeSpec, flat: Sequence[int]) -> "Genotype":
        """Rebuild a genotype from a flat gene vector produced by :meth:`to_flat`."""
        flat = np.asarray(flat, dtype=np.int64)
        if flat.shape != (spec.n_genes,):
            raise ValueError(f"expected {spec.n_genes} genes, got {flat.shape}")
        n_pes = spec.n_pes
        function_genes = flat[:n_pes].reshape(spec.rows, spec.cols)
        west = flat[n_pes : n_pes + spec.rows]
        north = flat[n_pes + spec.rows : n_pes + spec.rows + spec.cols]
        output = int(flat[-1])
        return cls(
            spec=spec,
            function_genes=function_genes.astype(np.uint8),
            west_mux=west.astype(np.uint8),
            north_mux=north.astype(np.uint8),
            output_select=output,
        )

    # ------------------------------------------------------------------ #
    # Bit-level encoding (matches the 4-bit gene coding of the paper)
    # ------------------------------------------------------------------ #
    def to_bits(self) -> np.ndarray:
        """Pack the genotype into a bit vector (uint8 of 0/1 values).

        Function and mux genes are packed MSB-first in 4 bits each; the
        output-select gene uses ``ceil(log2(rows))`` bits.  The encoding is
        what the partial-bitstream / configuration-register layer stores.
        """
        bits: List[int] = []
        for gene in self.function_genes.reshape(-1):
            bits.extend((int(gene) >> shift) & 1 for shift in (3, 2, 1, 0))
        for gene in np.concatenate([self.west_mux, self.north_mux]):
            bits.extend((int(gene) >> shift) & 1 for shift in (3, 2, 1, 0))
        out_bits = max(1, int(np.ceil(np.log2(max(2, self.spec.rows)))))
        bits.extend((self.output_select >> shift) & 1 for shift in range(out_bits - 1, -1, -1))
        return np.array(bits, dtype=np.uint8)

    @classmethod
    def from_bits(cls, spec: GenotypeSpec, bits: Iterable[int]) -> "Genotype":
        """Inverse of :meth:`to_bits`."""
        bits = np.asarray(list(bits), dtype=np.uint8)
        if bits.shape != (spec.gene_bits(),):
            raise ValueError(f"expected {spec.gene_bits()} bits, got {bits.shape}")
        pos = 0

        def take(n_bits: int) -> int:
            nonlocal pos
            value = 0
            for _ in range(n_bits):
                value = (value << 1) | int(bits[pos])
                pos += 1
            return value

        functions = np.array([take(4) for _ in range(spec.n_pes)], dtype=np.uint8)
        west = np.array([take(4) for _ in range(spec.n_west_inputs)], dtype=np.uint8)
        north = np.array([take(4) for _ in range(spec.n_north_inputs)], dtype=np.uint8)
        out_bits = max(1, int(np.ceil(np.log2(max(2, spec.rows)))))
        output = take(out_bits)
        return cls(
            spec=spec,
            function_genes=functions.reshape(spec.rows, spec.cols),
            west_mux=west,
            north_mux=north,
            output_select=output,
        )

    # ------------------------------------------------------------------ #
    # Comparison helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Genotype):
            return NotImplemented
        return (
            self.spec == other.spec
            and np.array_equal(self.function_genes, other.function_genes)
            and np.array_equal(self.west_mux, other.west_mux)
            and np.array_equal(self.north_mux, other.north_mux)
            and self.output_select == other.output_select
        )

    def hamming_distance(self, other: "Genotype") -> int:
        """Number of genes that differ between two genotypes of the same spec."""
        if self.spec != other.spec:
            raise ValueError("cannot compare genotypes with different specs")
        return int(np.count_nonzero(self.to_flat() != other.to_flat()))

    def changed_function_positions(self, other: "Genotype") -> List[Tuple[int, int]]:
        """(row, col) positions whose *function* gene differs from ``other``.

        This is exactly the set of PEs that must be partially reconfigured
        to move the fabric from ``other``'s phenotype to this one, and is
        the quantity the reconfiguration-engine timing model charges for.
        """
        if self.spec != other.spec:
            raise ValueError("cannot compare genotypes with different specs")
        diff = self.function_genes != other.function_genes
        rows, cols = np.nonzero(diff)
        return list(zip(rows.tolist(), cols.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Genotype({self.spec.rows}x{self.spec.cols}, "
            f"functions={self.function_genes.reshape(-1).tolist()}, "
            f"west={self.west_mux.tolist()}, north={self.north_mux.tolist()}, "
            f"out={self.output_select})"
        )
