"""Functional simulator of the evolvable systolic array.

The array is a ``rows x cols`` mesh of Processing Elements.  Data flows
west-to-east and north-to-south: PE ``(r, c)`` takes its west input from
the east output of PE ``(r, c-1)`` (or, for the first column, from the
west-side array input of row ``r``) and its north input from the south
output of PE ``(r-1, c)`` (or, for the first row, from the north-side array
input of column ``c``).  Each PE output is registered and propagated to
both its east and south neighbours, so the array is a systolic pipeline.

For a 4x4 array there are eight array inputs (four north, four west), each
fed through a 9-to-1 multiplexer with one of the nine pixels of the 3x3
sliding window, and the array output is one of the four east-side outputs
selected by the output multiplexer (paper §III.A).

The simulator evaluates the whole image at once: every "signal" is a full
image plane and each PE operation is a vectorised NumPy expression, so one
candidate evaluation costs ``rows*cols`` element-wise operations — the key
to running evolution with thousands of generations in Python (see the
hpc-parallel optimisation guides: vectorise the inner loop).

*How* those operations are executed is pluggable: the array owns the
geometry, genotype validation and fault state, and delegates evaluation to
an :class:`~repro.backends.base.EvaluationBackend` selected by name
(``backend="reference"`` for the auditable per-PE sweep,
``backend="numpy"`` for the memoised vectorised engine; see
:mod:`repro.backends`).  Backends are bit-exact against each other — the
switch changes wall-clock time only, never results.

Fault support
-------------
``SystolicArray`` accepts a mapping of faulty PE positions.  A faulty PE
produces uniformly random output regardless of its configuration, matching
the paper's PE-level fault-emulation model (§VI.D: faults are injected "by
means of the reconfiguration engine ... with a modified bitstream
corresponding to a dummy PE, which generates a random value in its output").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.array.genotype import Genotype, GenotypeSpec
from repro.array.processing_element import _PE_FAULT_STREAM_TAG
from repro.array.window import N_WINDOW_PIXELS, extract_windows

if TYPE_CHECKING:  # pragma: no cover - runtime import stays lazy (cycle guard)
    from repro.backends.base import EvaluationBackend

__all__ = ["ArrayGeometry", "SystolicArray"]

#: Stream tag mixed into the derived per-position fault seed used when
#: :meth:`SystolicArray.inject_fault` is called without an explicit seed.
#: The derived entropy is ``SeedSequence([_FAULT_STREAM_TAG, row, col])``,
#: so the implicit stream of a position is stable across runs and distinct
#: from every explicitly seeded stream.  Shared with (imported from)
#: :class:`~repro.array.processing_element.ProcessingElement` so a bare PE
#: and an array position derive the *same* stream — part of the documented
#: RNG determinism contract (see ``docs/architecture.md``).
_FAULT_STREAM_TAG = _PE_FAULT_STREAM_TAG


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical geometry of one processing array.

    The defaults reproduce the paper's floorplan numbers (§VI.A): each PE is
    two CLB columns wide by a quarter of a clock-region height (5 CLBs), so
    a 4x4 array occupies eight CLB columns of one clock region, 160 CLBs in
    total.
    """

    rows: int = 4
    cols: int = 4
    pe_clb_columns: int = 2
    pe_clb_rows: int = 5
    clock_region_clb_rows: int = 20

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array geometry must have at least one PE")
        if self.pe_clb_columns < 1 or self.pe_clb_rows < 1:
            raise ValueError("PE CLB footprint must be positive")

    @property
    def n_pes(self) -> int:
        """Number of PEs in the array."""
        return self.rows * self.cols

    @property
    def clbs_per_pe(self) -> int:
        """CLBs occupied by a single PE (paper: 2 columns x 5 rows = 10 CLBs)."""
        return self.pe_clb_columns * self.pe_clb_rows

    @property
    def total_clbs(self) -> int:
        """CLBs occupied by the whole array (paper: 160 for a 4x4 array)."""
        return self.n_pes * self.clbs_per_pe

    @property
    def clb_columns(self) -> int:
        """CLB columns spanned by the array (paper: 8 for a 4x4 array)."""
        return self.cols * self.pe_clb_columns

    def spec(self) -> GenotypeSpec:
        """The genotype spec matching this geometry."""
        return GenotypeSpec(rows=self.rows, cols=self.cols)


class SystolicArray:
    """Functional model of one evolvable processing array.

    Parameters
    ----------
    geometry:
        Array geometry (defaults to the paper's 4x4 array).
    faults:
        Optional mapping ``{(row, col): seed}`` of permanently faulty PE
        positions.  Faults can also be injected later via
        :meth:`inject_fault` (which is what :mod:`repro.fpga.faults` does).
    backend:
        Evaluation engine: a registered backend name (``"reference"``,
        ``"numpy"``), an :class:`~repro.backends.base.EvaluationBackend`
        instance, or ``None`` for the reference default.  All backends
        are bit-exact; see :mod:`repro.backends`.
    """

    def __init__(
        self,
        geometry: ArrayGeometry = ArrayGeometry(),
        faults: Optional[Mapping[Tuple[int, int], int]] = None,
        backend: Union[str, "EvaluationBackend", None] = None,
    ) -> None:
        self.geometry = geometry
        self._fault_rngs: Dict[Tuple[int, int], np.random.Generator] = {}
        # The entropy each position's stream was created from, kept so
        # reset_fault_streams() can rewind a reused array to generation
        # zero of the same garbage sequence.
        self._fault_seeds: Dict[Tuple[int, int], Union[int, Tuple[int, ...], None]] = {}
        if faults:
            for position, seed in faults.items():
                self.inject_fault(position, seed)
        self.set_backend(backend)

    # ------------------------------------------------------------------ #
    # Backend selection
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> "EvaluationBackend":
        """The evaluation engine currently driving this array."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the current evaluation engine."""
        return self._backend.name

    def set_backend(self, backend: Union[str, "EvaluationBackend", None]) -> None:
        """Select the evaluation engine (name, instance, or ``None`` = reference)."""
        from repro.backends import resolve_backend

        self._backend = resolve_backend(backend)

    # ------------------------------------------------------------------ #
    # Fault management (PE-level fault model)
    # ------------------------------------------------------------------ #
    @property
    def faulty_positions(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of currently faulty (row, col) PE positions."""
        return tuple(sorted(self._fault_rngs))

    @property
    def n_faults(self) -> int:
        """Number of faulty PEs."""
        return len(self._fault_rngs)

    def _check_position(self, position: Tuple[int, int]) -> Tuple[int, int]:
        row, col = int(position[0]), int(position[1])
        if not (0 <= row < self.geometry.rows and 0 <= col < self.geometry.cols):
            raise ValueError(
                f"PE position {position} outside the {self.geometry.rows}x"
                f"{self.geometry.cols} array"
            )
        return row, col

    @staticmethod
    def _spawn_fault_rng(entropy: Union[int, Tuple[int, ...]]) -> np.random.Generator:
        if isinstance(entropy, tuple):
            return np.random.default_rng(np.random.SeedSequence(list(entropy)))
        return np.random.default_rng(entropy)

    def inject_fault(self, position: Tuple[int, int], seed: Optional[int] = None) -> None:
        """Mark a PE position as permanently damaged.

        The faulty PE will output random pixels on every evaluation; evolution
        can only recover by routing useful computation around that position.

        Each faulty position owns an independent, seeded random stream,
        (re)started here: injecting the same seed at the same position
        always reproduces the same garbage sequence, which is what makes
        fault campaigns replayable.  When ``seed`` is omitted the stream is
        derived deterministically from the position
        (``SeedSequence([_FAULT_STREAM_TAG, row, col])``) instead of the
        old unseeded fallback; relying on the implicit derivation is
        deprecated — pass an explicit seed so the stream identity is part
        of the experiment spec.
        """
        row, col = self._check_position(position)
        if seed is None:
            warnings.warn(
                "SystolicArray.inject_fault() without a seed is deprecated: the "
                "fault stream is now derived from the PE position instead of an "
                "unseeded generator; pass an explicit seed to make the stream "
                "identity part of the experiment spec",
                DeprecationWarning,
                stacklevel=2,
            )
            entropy: Union[int, Tuple[int, ...]] = (_FAULT_STREAM_TAG, row, col)
        else:
            entropy = int(seed)
        self._fault_seeds[(row, col)] = entropy
        self._fault_rngs[(row, col)] = self._spawn_fault_rng(entropy)

    def clear_fault(self, position: Tuple[int, int]) -> None:
        """Remove a previously injected fault (used by tests and scrubbing of SEUs)."""
        row, col = self._check_position(position)
        self._fault_rngs.pop((row, col), None)
        self._fault_seeds.pop((row, col), None)

    def clear_all_faults(self) -> None:
        """Remove every injected fault (and its recorded stream seed)."""
        self._fault_rngs.clear()
        self._fault_seeds.clear()

    def reset_fault_streams(self) -> None:
        """Rewind every fault stream to the start of its seeded sequence.

        Evaluation consumes the per-position streams, so re-running a fault
        scenario on a *reused* array would otherwise continue mid-stream
        and produce different garbage than the first run.  This rewinds
        each position's generator to the entropy it was injected with,
        making the next evaluation byte-identical to the first one after
        injection.  (:meth:`~repro.core.acb.ArrayControlBlock.sync_faults`
        achieves the same by re-injecting from the fabric state.)
        """
        for position, entropy in self._fault_seeds.items():
            self._fault_rngs[position] = self._spawn_fault_rng(entropy)

    def fault_seed(self, position: Tuple[int, int]) -> Union[int, Tuple[int, ...]]:
        """The entropy a faulty position's stream was created from."""
        return self._fault_seeds[position]

    def is_faulty(self, position: Tuple[int, int]) -> bool:
        """Whether the PE at ``position`` is currently faulty."""
        return position in self._fault_rngs

    def fault_rng(self, position: Tuple[int, int]) -> np.random.Generator:
        """The garbage generator of a faulty position (backends draw from it).

        Each faulty position owns an independent random stream; every
        evaluation of a candidate must consume exactly one ``(H, W)``
        block from it, in candidate order — that is the contract that
        keeps all evaluation backends (and batch vs sequential paths)
        bit-exact on fault experiments.
        """
        return self._fault_rngs[position]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    @property
    def latency(self) -> int:
        """Pipeline latency in clock cycles from input to selected output.

        Each PE introduces one register stage; the longest path to an
        east-side output traverses ``cols`` PEs horizontally plus up to
        ``rows - 1`` vertical hops, so the hardware pads streams with FIFOs
        to this depth (the ACB "structures to compute and to deal with the
        variable latency of the arrays").
        """
        return self.geometry.cols + self.geometry.rows - 1

    def process_planes(self, planes: np.ndarray, genotype: Genotype) -> np.ndarray:
        """Evaluate a candidate circuit on pre-extracted window planes.

        Parameters
        ----------
        planes:
            ``(9, H, W)`` uint8 array from :func:`repro.array.window.extract_windows`.
        genotype:
            The candidate circuit.

        Returns
        -------
        numpy.ndarray
            ``(H, W)`` uint8 output image.
        """
        planes = np.asarray(planes)
        if planes.ndim != 3 or planes.shape[0] != N_WINDOW_PIXELS:
            raise ValueError(
                f"planes must have shape (9, H, W), got {planes.shape}"
            )
        if planes.dtype != np.uint8:
            raise TypeError(f"planes must be uint8, got {planes.dtype}")
        spec = genotype.spec
        if (spec.rows, spec.cols) != (self.geometry.rows, self.geometry.cols):
            raise ValueError(
                f"genotype geometry {spec.rows}x{spec.cols} does not match array "
                f"{self.geometry.rows}x{self.geometry.cols}"
            )
        return self._backend.process_planes(self, planes, genotype)

    def process_planes_batch(
        self, planes: np.ndarray, genotypes: Sequence[Genotype]
    ) -> np.ndarray:
        """Evaluate a batch of candidate circuits in one windowed NumPy pass.

        This is the vectorised hot path behind ``evaluate_batch``: instead of
        sweeping the array once per candidate (``len(genotypes)`` passes of
        ``rows*cols`` whole-image operations each), the whole batch is handed
        to the evaluation backend, which exploits the genes the candidates
        share — a generation whose offspring differ from the parent in a few
        genes (the common case under low mutation rates) costs close to
        *one* array sweep instead of ``B``.  How the sharing is exploited is
        the backend's business: ``reference`` groups candidates by function
        gene per PE position, ``numpy`` memoises whole subcircuits (see
        :mod:`repro.backends`).

        The result is bit-identical to evaluating every candidate separately
        with :meth:`process_planes`, on every backend: PE operations are
        element-wise and each faulty PE draws its random planes from its own
        generator once per candidate, in candidate order, exactly as the
        sequential path does.

        Parameters
        ----------
        planes:
            ``(9, H, W)`` uint8 array from :func:`repro.array.window.extract_windows`.
        genotypes:
            The candidate circuits (all with this array's geometry).

        Returns
        -------
        numpy.ndarray
            ``(B, H, W)`` uint8 array; slice ``b`` is candidate ``b``'s output.
        """
        planes, genotypes = self._validate_batch(planes, genotypes)
        return self._backend.process_planes_batch(self, planes, genotypes)

    def _validate_batch(self, planes, genotypes):
        """Shared input validation of the batch/population entry points."""
        planes = np.asarray(planes)
        if planes.ndim != 3 or planes.shape[0] != N_WINDOW_PIXELS:
            raise ValueError(f"planes must have shape (9, H, W), got {planes.shape}")
        if planes.dtype != np.uint8:
            raise TypeError(f"planes must be uint8, got {planes.dtype}")
        genotypes = list(genotypes)
        if not genotypes:
            raise ValueError("genotypes must contain at least one candidate")
        rows, cols = self.geometry.rows, self.geometry.cols
        for genotype in genotypes:
            spec = genotype.spec
            if (spec.rows, spec.cols) != (rows, cols):
                raise ValueError(
                    f"genotype geometry {spec.rows}x{spec.cols} does not match "
                    f"array {rows}x{cols}"
                )
        return planes, genotypes

    def evaluate_population(
        self,
        planes: np.ndarray,
        genotypes: Sequence[Genotype],
        reference: np.ndarray,
    ) -> np.ndarray:
        """Fitness of a whole candidate population in one backend call.

        The population entry point of the evaluation-backend protocol: each
        candidate's aggregated absolute error against ``reference`` (the
        paper's aggregated-MAE fitness,
        :func:`repro.imaging.metrics.sae`) is computed inside the backend,
        which can share hash-consed subprograms across the population and
        skip materialising per-candidate output images entirely (see
        :meth:`repro.backends.base.EvaluationBackend.evaluate_population`).

        Bit-exact against scoring candidates one at a time with
        :meth:`process_planes` + ``sae``: the values are identical floats
        and every faulty position draws exactly one ``(H, W)`` block per
        candidate, in candidate order, from its own seeded stream.

        Parameters
        ----------
        planes:
            ``(9, H, W)`` uint8 array from :func:`repro.array.window.extract_windows`.
        genotypes:
            The candidate circuits (all with this array's geometry).
        reference:
            ``(H, W)`` reference image the fitness unit compares against.

        Returns
        -------
        numpy.ndarray
            ``(B,)`` float64 array; entry ``b`` is candidate ``b``'s fitness.
        """
        planes, genotypes = self._validate_batch(planes, genotypes)
        reference = np.asarray(reference)
        if reference.shape != planes.shape[1:]:
            raise ValueError(
                f"reference shape {reference.shape} does not match the "
                f"{planes.shape[1:]} image planes"
            )
        # Any reference dtype is accepted, exactly like the per-candidate
        # sae() path: backends take an int16 fast reduce for uint8 (the
        # hardware pixel format) and sae()'s int64 arithmetic otherwise.
        return self._backend.evaluate_population(self, planes, genotypes, reference)

    def process(self, image: np.ndarray, genotype: Genotype) -> np.ndarray:
        """Evaluate a candidate circuit on an image (window extraction included)."""
        return self.process_planes(extract_windows(image), genotype)

    def process_batch(self, image: np.ndarray, genotypes: Sequence[Genotype]) -> np.ndarray:
        """Evaluate a batch of candidates on an image (window extraction included)."""
        return self.process_planes_batch(extract_windows(image), genotypes)

    def process_stream(
        self, images: Iterable[np.ndarray], genotype: Genotype
    ) -> Iterable[np.ndarray]:
        """Lazily filter a stream of images with the same configured circuit.

        Mirrors mission-time operation where the configured array filters a
        continuous stream (e.g. camera frames) without reconfiguration.
        """
        for image in images:
            yield self.process(image, genotype)
