"""Packed contiguous plane storage for kernel-compiled evaluation.

The reference and numpy backends keep every image plane (array inputs,
memoised subcircuit outputs, candidate outputs) as an independently
allocated ``(H, W)`` array.  That is convenient, but it scatters the
population's working set across the heap: a population pass touches B
candidate outputs plus their shared subprograms through B distinct
allocations and pointer hops.

:class:`PlaneArena` instead lays every plane of one training-plane set
out as rows of a single contiguous ``(capacity, H*W)`` uint8 tensor —
the "bit-packed plane representation" of the ROADMAP's compiled-backend
item.  Planes are identified by dense integer row ids, appended
write-once, and read back as flat views; a whole population's outputs
are then one fancy-indexed :func:`numpy.take` over the arena (a single
pass over packed memory, zero per-candidate allocation).

>>> import numpy as np
>>> arena = PlaneArena(plane_elems=4, capacity=2)
>>> first = arena.append(np.array([1, 2, 3, 4], dtype=np.uint8))
>>> row = arena.alloc()
>>> arena.row(row)[:] = 7
>>> arena.n_rows
2
>>> arena.gather([row, first, row]).tolist()
[[7, 7, 7, 7], [1, 2, 3, 4], [7, 7, 7, 7]]

Growth notes: the arena doubles its backing buffer when full.  Views
handed out before a growth keep reading the *old* buffer — that is safe
here because arena rows are write-once (they never change after they are
filled), but callers that hold views across :meth:`alloc` calls should
re-fetch them via :meth:`row` before writing.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["PlaneArena"]


class PlaneArena:
    """Append-only packed store of equally sized uint8 planes.

    Parameters
    ----------
    plane_elems:
        Number of pixels per plane (``H * W``; planes are stored flat).
    capacity:
        Initial row capacity; the arena grows by doubling when exceeded.
    """

    __slots__ = ("plane_elems", "_buf", "n_rows")

    def __init__(self, plane_elems: int, capacity: int = 64) -> None:
        if plane_elems < 1 or capacity < 1:
            raise ValueError("plane_elems and capacity must be positive")
        self.plane_elems = int(plane_elems)
        self._buf = np.empty((int(capacity), self.plane_elems), dtype=np.uint8)
        self.n_rows = 0

    @property
    def nbytes(self) -> int:
        """Bytes held by the rows in use (the backing buffer may be larger)."""
        return self.n_rows * self.plane_elems

    @property
    def capacity(self) -> int:
        """Row capacity of the current backing buffer."""
        return self._buf.shape[0]

    def alloc(self) -> int:
        """Reserve the next row; returns its id (fill it via :meth:`row`)."""
        if self.n_rows == self._buf.shape[0]:
            grown = np.empty((self._buf.shape[0] * 2, self.plane_elems), dtype=np.uint8)
            grown[: self.n_rows] = self._buf[: self.n_rows]
            self._buf = grown
        row = self.n_rows
        self.n_rows = row + 1
        return row

    def append(self, plane: np.ndarray) -> int:
        """Copy a flat uint8 plane into the arena; returns its row id."""
        row = self.alloc()
        self._buf[row] = plane
        return row

    def row(self, row: int) -> np.ndarray:
        """Flat ``(plane_elems,)`` view of one stored plane."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"arena row {row} out of range [0, {self.n_rows})")
        return self._buf[row]

    def gather(self, rows: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Stack the selected planes into one fresh ``(len(rows), plane_elems)``
        array — a single :func:`numpy.take` pass over the packed buffer."""
        index = np.asarray(rows, dtype=np.intp)
        return self._buf[: self.n_rows].take(index, axis=0)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlaneArena(plane_elems={self.plane_elems}, "
            f"rows={self.n_rows}/{self.capacity})"
        )
