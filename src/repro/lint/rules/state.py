"""Shared-state discipline: frozen configs stay frozen, guarded state stays locked.

Two rules:

* ``FRZ001`` — config objects are frozen dataclasses by contract (their
  JSON round-trip and content digests assume value semantics); any
  attribute assignment or ``object.__setattr__`` escape hatch outside the
  class's own ``__init__``/``__post_init__`` is a violation — use
  ``dataclasses.replace``.
* ``LCK001`` — a lightweight race detector.  For every class that owns a
  ``threading.Lock``/``RLock``/``Condition`` (and for module-global
  stores guarded by a module-level lock), the rule infers the guarded
  attribute set — everything written inside a ``with <lock>:`` block —
  and flags writes to those attributes outside a lock context.  The
  repo-wide convention that a ``*_locked`` function is only called with
  the lock already held is honoured.  The known shared hot spots
  (``WorkQueue``, ``DedupeCache``, the process-global plane/LUT stores
  of the compiled backend) are *designated* explicitly, so the rule
  fires even when a store has no lock at all yet — exactly the failure
  mode inference alone cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules_registry import LintRule, register_rule

__all__ = ["FrozenConfigMutationRule", "LockDisciplineRule"]

_LOCK_TYPES = ("threading.Lock", "threading.RLock", "threading.Condition")

#: Container methods that mutate their receiver.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

_CONSTRUCTOR_METHODS = ("__init__", "__post_init__", "__new__")

#: Classes whose shared attributes are guarded by contract even before
#: inference — the concurrency-critical state named in the architecture
#: docs.  A write outside a lock context in these classes is always a
#: violation.
DESIGNATED_CLASS_ATTRS: Dict[str, Set[str]] = {
    "WorkQueue": {"_items", "_pending", "_by_lease"},
    "DedupeCache": {"_entries", "_loaded_size"},
    # The persistent fitness-cache tier is shared between campaign workers
    # under the same refresh-by-size discipline as DedupeCache.
    "PersistentFitnessCache": {"_entries", "_loaded_size"},
}

#: Module-global stores guarded by contract (matched by rel-path suffix):
#: the compiled backend's content-addressed program stores and the
#: process-global lookup-table caches.
DESIGNATED_MODULE_GLOBALS: Dict[str, Set[str]] = {
    "repro/backends/compiled.py": {"_STORES", "_STORE_HINT"},
    "repro/backends/lut.py": {"_pair_luts", "_unary_luts", "_chain_luts", "_fused_luts"},
}


@register_rule
class FrozenConfigMutationRule(LintRule):
    id = "FRZ001"
    name = "frozen-config-mutation"
    summary = "no attribute assignment on frozen dataclass instances"
    contract = (
        "Configs are frozen dataclasses: their JSON round-trips, content "
        "digests and run signatures all assume value semantics.  Mutating "
        "one (directly, via setattr, or via the object.__setattr__ escape "
        "hatch outside the class's own __init__/__post_init__) silently "
        "invalidates every digest derived from it; use dataclasses.replace."
    )

    def check(self, module, context) -> Iterable[Finding]:
        frozen = context.frozen_classes
        if not frozen:
            return
        yield from self._walk(module, module.tree, frozen, class_name=None, func_name=None)

    # ------------------------------------------------------------------ #
    def _walk(self, module, node, frozen, class_name, func_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(module, child, frozen, child.name, func_name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, child, frozen, class_name)
                yield from self._walk(module, child, frozen, class_name, child.name)
            else:
                yield from self._walk(module, child, frozen, class_name, func_name)

    def _check_function(self, module, func, frozen, class_name):
        frozen_names = self._frozen_locals(func, frozen)
        in_frozen_ctor = (
            class_name in frozen and func.name in _CONSTRUCTOR_METHODS
        )
        if class_name in frozen and not in_frozen_ctor:
            frozen_names = dict(frozen_names)
            frozen_names["self"] = class_name
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                continue  # nested defs re-checked with their own annotations
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    name = _attr_base_name(target)
                    if name is not None and name in frozen_names:
                        yield self.finding(
                            module,
                            node,
                            f"assignment to attribute of frozen "
                            f"{frozen_names[name]} instance {name!r}; use "
                            "dataclasses.replace",
                            symbol=f"{frozen_names[name]}.{_attr_name(target)}",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(
                    module, node, frozen_names, in_frozen_ctor
                )

    def _check_setattr(self, module, call, frozen_names, in_frozen_ctor):
        func = call.func
        is_escape = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        is_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        if not (is_escape or is_setattr) or not call.args:
            return
        target = call.args[0]
        if not isinstance(target, ast.Name) or target.id not in frozen_names:
            return
        if in_frozen_ctor and target.id == "self":
            return  # the blessed construction-time escape hatch
        yield self.finding(
            module,
            call,
            f"setattr on frozen {frozen_names[target.id]} instance "
            f"{target.id!r} outside __init__/__post_init__; use "
            "dataclasses.replace",
            symbol=f"{frozen_names[target.id]}.__setattr__",
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _frozen_locals(func, frozen) -> Dict[str, str]:
        """Names in ``func`` statically known to hold frozen instances."""
        names: Dict[str, str] = {}
        args = list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
        for arg in args:
            hit = _annotation_frozen_class(arg.annotation, frozen)
            if hit:
                names[arg.arg] = hit
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                hit = _annotation_frozen_class(node.annotation, frozen)
                if hit:
                    names[node.target.id] = hit
        return names


def _annotation_frozen_class(annotation, frozen) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in frozen:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in frozen:
            return node.attr
    return None


def _attr_base_name(target) -> Optional[str]:
    """``p`` for targets shaped ``p.attr`` / ``p.attr[k]``."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.value.id
    return None


def _attr_name(target) -> str:
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr
    return "?"


# ---------------------------------------------------------------------- #
# LCK001
# ---------------------------------------------------------------------- #
@dataclass
class _Write:
    """One write to a tracked entity, with its lexical context."""

    entity: Tuple[str, str]  # ("attr", name) within a class / ("global", name)
    owner: Optional[str]  # class name for attr writes
    node: ast.AST
    under_lock: bool
    func_name: Optional[str]
    top_level: bool


@register_rule
class LockDisciplineRule(LintRule):
    id = "LCK001"
    name = "lock-guarded-write"
    summary = "guarded shared state is only written inside its lock context"
    contract = (
        "For every class owning a threading lock (and for designated "
        "process-global stores), attributes written inside any `with "
        "<lock>:` block form the guarded set; writing one outside a lock "
        "context is a race.  Exemptions: __init__ (construction is "
        "single-owner), functions named *_locked (the documented "
        "convention: callers hold the lock), and `with _file_lock(...)` "
        "fcntl contexts for cross-process state."
    )

    def check(self, module, context) -> Iterable[Finding]:
        module_locks = self._module_locks(module)
        module_globals = self._module_global_names(module)
        designated_globals: Set[str] = set()
        for suffix, names in DESIGNATED_MODULE_GLOBALS.items():
            if module.rel.endswith(suffix):
                designated_globals |= names
        writes: List[_Write] = []
        class_locks: Dict[str, Set[str]] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                class_locks[node.name] = self._class_locks(module, node)
        self._collect(
            module,
            module.tree,
            writes,
            module_locks=module_locks,
            module_globals=module_globals,
            class_locks=class_locks,
            class_name=None,
            func_name=None,
            under_lock=False,
            top_level=True,
            global_decls=frozenset(),
        )

        # Guarded sets: designated entities plus everything observed
        # written under a lock outside construction.
        guarded: Set[Tuple[Optional[str], Tuple[str, str]]] = set()
        for owner, names in DESIGNATED_CLASS_ATTRS.items():
            if owner in class_locks or any(w.owner == owner for w in writes):
                for name in sorted(names):
                    guarded.add((owner, ("attr", name)))
        for name in sorted(designated_globals):
            guarded.add((None, ("global", name)))
        for write in writes:
            if write.under_lock and write.func_name not in _CONSTRUCTOR_METHODS:
                guarded.add((write.owner, write.entity))

        for write in writes:
            if (write.owner, write.entity) not in guarded:
                continue
            if write.under_lock or write.top_level:
                continue
            if write.func_name in _CONSTRUCTOR_METHODS:
                continue
            if write.func_name and write.func_name.endswith("_locked"):
                continue
            kind, name = write.entity
            where = f"{write.owner}.{name}" if write.owner else name
            yield self.finding(
                module,
                write.node,
                f"write to lock-guarded {'attribute' if kind == 'attr' else 'global'} "
                f"{where!r} outside a lock context; hold the lock or move the "
                "write into a *_locked helper",
                symbol=where,
            )

    # ------------------------------------------------------------------ #
    def _module_locks(self, module) -> Set[str]:
        locks: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                resolved = module.imports.resolve(node.value.func)
                if resolved in _LOCK_TYPES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            locks.add(target.id)
        return locks

    @staticmethod
    def _module_global_names(module) -> Set[str]:
        names: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names

    def _class_locks(self, module, class_node) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            resolved = module.imports.resolve(node.value.func)
            if resolved not in _LOCK_TYPES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
        return locks

    # ------------------------------------------------------------------ #
    def _is_lock_context(self, module, item, class_name, class_locks, module_locks) -> bool:
        expr = item.context_expr
        if isinstance(expr, ast.Name) and expr.id in module_locks:
            return True
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and class_name is not None
            and expr.attr in class_locks.get(class_name, ())
        ):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id.endswith("file_lock"):
                return True  # advisory fcntl context manager
            resolved = module.imports.resolve(func)
            if resolved and resolved.endswith("file_lock"):
                return True
        return False

    def _collect(
        self,
        module,
        node,
        writes,
        *,
        module_locks,
        module_globals,
        class_locks,
        class_name,
        func_name,
        under_lock,
        top_level,
        global_decls,
    ):
        for child in ast.iter_child_nodes(node):
            child_class = class_name
            child_func = func_name
            child_lock = under_lock
            child_top = top_level
            child_globals = global_decls
            if isinstance(child, ast.ClassDef):
                child_class, child_func, child_lock = child.name, None, False
                child_top = False
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_func, child_lock = child.name, False
                child_top = False
                child_globals = frozenset(
                    name
                    for stmt in ast.walk(child)
                    if isinstance(stmt, ast.Global)
                    for name in stmt.names
                )
            elif isinstance(child, ast.With):
                if any(
                    self._is_lock_context(module, item, class_name, class_locks, module_locks)
                    for item in child.items
                ):
                    child_lock = True
            self._record_writes(
                module,
                child,
                writes,
                module_globals=module_globals,
                class_name=child_class if not isinstance(child, ast.ClassDef) else class_name,
                func_name=child_func,
                under_lock=child_lock,
                top_level=child_top,
                global_decls=child_globals,
            )
            self._collect(
                module,
                child,
                writes,
                module_locks=module_locks,
                module_globals=module_globals,
                class_locks=class_locks,
                class_name=child_class,
                func_name=child_func,
                under_lock=child_lock,
                top_level=child_top,
                global_decls=child_globals,
            )

    def _record_writes(
        self,
        module,
        node,
        writes,
        *,
        module_globals,
        class_name,
        func_name,
        under_lock,
        top_level,
        global_decls,
    ):
        def add(entity, owner):
            writes.append(
                _Write(
                    entity=entity,
                    owner=owner,
                    node=node,
                    under_lock=under_lock,
                    func_name=func_name,
                    top_level=top_level,
                )
            )

        def classify_target(target):
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    classify_target(element)
                return
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and class_name is not None
            ):
                add(("attr", base.attr), class_name)
            elif isinstance(base, ast.Name) and base.id in module_globals:
                # Plain name rebinding inside a function only touches the
                # global with a `global` declaration; subscript writes
                # always do.
                if isinstance(target, ast.Subscript) or top_level or base.id in global_decls:
                    add(("global", base.id), None)

        if isinstance(node, ast.Assign):
            for target in node.targets:
                classify_target(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            classify_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                classify_target(target)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                receiver = func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                    and class_name is not None
                ):
                    add(("attr", receiver.attr), class_name)
                elif isinstance(receiver, ast.Name) and receiver.id in module_globals:
                    add(("global", receiver.id), None)
