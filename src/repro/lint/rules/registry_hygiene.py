"""Registry hygiene: names well-formed, unique, and actually reachable.

The registries are the project's plugin surface — drivers, tasks,
backends, experiments all dispatch through string keys.  Three things go
wrong silently: a name that breaks the kebab-case CLI convention, two
registrations colliding (last import wins, order-dependent), and a
module that registers an :class:`ExperimentSpec` or backend but is never
imported by its wiring module, so the registration simply never runs and
the subcommand vanishes without an error anywhere.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Set

from repro.lint.context import Registration
from repro.lint.findings import Finding
from repro.lint.rules_registry import LintRule, register_rule

__all__ = ["KebabCaseNameRule", "DuplicateRegistrationRule", "UnwiredModuleRule"]

_KEBAB_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")

#: Wiring contract: a module registering ``kind`` must be imported (directly
#: or as the wiring module itself) by the module at the rel-path suffix.
_WIRING = {
    "experiment": ("repro/cli.py", "src/repro/cli.py"),
    "backend": ("repro/backends/__init__.py", "src/repro/backends/__init__.py"),
}


def _module_registrations(module, context) -> List[Registration]:
    return [reg for reg in context.registrations if reg.path == module.rel]


def _blame(rule: LintRule, module, reg: Registration, message: str) -> Finding:
    return Finding(
        rule=rule.id,
        name=rule.name,
        path=module.rel,
        line=reg.line,
        col=reg.col,
        message=message,
        symbol=f"{reg.kind}:{reg.name}",
        snippet=module.line_text(reg.line),
    )


@register_rule
class KebabCaseNameRule(LintRule):
    id = "REG001"
    name = "registry-kebab-case"
    summary = "registry names are kebab-case (lowercase, digits, single hyphens)"
    contract = (
        "Registry names are public CLI/config vocabulary: kebab-case "
        "keeps `repro-ehw <name>` and config values consistent and "
        "shell-safe.  Pre-1.0 snake_case names that stored configs "
        "already reference are baselined, not renamed."
    )

    def check(self, module, context) -> Iterable[Finding]:
        for reg in _module_registrations(module, context):
            if _KEBAB_RE.match(reg.name):
                continue
            yield _blame(
                self,
                module,
                reg,
                f"registry name {reg.name!r} ({reg.kind}) is not kebab-case",
            )


@register_rule
class DuplicateRegistrationRule(LintRule):
    id = "REG002"
    name = "registry-duplicate-name"
    summary = "no two registration sites claim the same (kind, name)"
    contract = (
        "Two static registrations of the same (kind, name) mean the "
        "winner depends on import order — a heisenbug by construction.  "
        "Deliberate replacement must say so: pass replace=True (or guard "
        "with a containment check), which excludes the site here."
    )

    def check(self, module, context) -> Iterable[Finding]:
        by_key: Dict[tuple, List[Registration]] = {}
        for reg in context.registrations:
            if not reg.guarded:
                by_key.setdefault((reg.kind, reg.name), []).append(reg)
        for (kind, name), sites in sorted(by_key.items()):
            if len(sites) < 2:
                continue
            ordered = sorted(sites, key=lambda r: (r.path, r.line, r.col))
            for reg in ordered[1:]:
                if reg.path != module.rel:
                    continue
                first = ordered[0]
                yield _blame(
                    self,
                    module,
                    reg,
                    f"duplicate registration of {kind} {name!r} "
                    f"(first registered at {first.path}:{first.line}); "
                    "pass replace=True if the override is deliberate",
                )


@register_rule
class UnwiredModuleRule(LintRule):
    id = "REG003"
    name = "registry-unwired-module"
    summary = "modules that register experiments/backends are reachable from their wiring module"
    contract = (
        "Registration is an import side effect: an ExperimentSpec module "
        "never imported by repro/cli.py (directly, or via the "
        "repro.experiments package for modules living there) — or a "
        "backend module never imported by repro/backends/__init__.py — "
        "registers nothing, and its subcommand silently vanishes.  The "
        "rule only fires when the wiring module is part of the lint run, "
        "so linting a lone file stays meaningful."
    )

    def check(self, module, context) -> Iterable[Finding]:
        for kind, (wiring_rel_suffix, _) in _WIRING.items():
            regs = [reg for reg in _module_registrations(module, context) if reg.kind == kind]
            if not regs:
                continue
            if module.rel.endswith(wiring_rel_suffix):
                continue  # the wiring module itself
            wiring = self._find_module(context, wiring_rel_suffix)
            if wiring is None:
                continue  # wiring module not under lint: cannot judge
            dotted = _dotted_name(module.rel)
            if dotted is None:
                continue
            reachable = _imported_names(wiring)
            # Modules inside a package wired wholesale (repro.experiments)
            # are reachable through the package __init__ when that __init__
            # imports them.
            package = dotted.rsplit(".", 1)[0]
            if package in reachable:
                package_init = self._find_module(context, f"{package.replace('.', '/')}/__init__.py")
                if package_init is not None and dotted in _imported_names(package_init):
                    continue
            if dotted in reachable:
                continue
            reg = regs[0]
            yield _blame(
                self,
                module,
                reg,
                f"module registers {kind} {reg.name!r} but is never imported by "
                f"{wiring.rel}; the registration never runs",
            )

    @staticmethod
    def _find_module(context, rel_suffix: str):
        for rel, module in context.module_by_rel.items():
            if rel.endswith(rel_suffix):
                return module
        return None


def _dotted_name(rel: str) -> str:
    """``src/repro/lint/experiment.py`` -> ``repro.lint.experiment``."""
    path = rel
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    parts = path.split("/")
    if "repro" not in parts:
        return path.replace("/", ".")
    return ".".join(parts[parts.index("repro"):])


def _imported_names(module) -> Set[str]:
    """Every dotted module name ``module`` imports, absolute or relative."""
    names: Set[str] = set()
    package = _dotted_name(module.rel)
    if not module.rel.endswith("__init__.py"):
        package = package.rsplit(".", 1)[0] if "." in package else ""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".") if package else []
                up = node.level - 1
                base_parts = base_parts[: len(base_parts) - up] if up else base_parts
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if base:
                names.add(base)
            for alias in node.names:
                if alias.name != "*" and base:
                    names.add(f"{base}.{alias.name}")
    return names
