"""Ordered-iteration discipline: unordered sets never feed ordered output.

Set iteration order is salted per process; a set that flows into a list,
a loop, a join or a serialised artifact makes run output depend on
``PYTHONHASHSEED`` — the exact class of bug the dedupe index and the
fault-position plumbing fixed by routing through ``tuple(sorted(...))``.
``ORD001`` flags set-valued expressions consumed by order-sensitive
sinks unless wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.findings import Finding
from repro.lint.rules_registry import LintRule, register_rule

__all__ = ["UnsortedSetIterationRule"]

#: Builtin sinks whose output order mirrors input order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "sum"})


@register_rule
class UnsortedSetIterationRule(LintRule):
    id = "ORD001"
    name = "ordering-unsorted-set-iteration"
    summary = "set-valued expressions feeding ordered sinks must go through sorted()"
    contract = (
        "Set iteration order is hash-salted per process; any set that "
        "flows into a loop, list(), tuple(), enumerate(), sum(), a "
        "comprehension or str.join() — anything whose output order "
        "mirrors input order — must pass through sorted() first, or run "
        "results depend on PYTHONHASHSEED.  Membership tests, len() and "
        "other order-free consumers are fine."
    )

    def check(self, module, context) -> Iterable[Finding]:
        local_sets = self._set_typed_names(module, context)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._flag(module, context, local_sets, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                # Only the outer generator is order-sensitive for list/dict
                # comprehensions; set comprehensions re-unorder anyway.
                if isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                    for comp in node.generators:
                        yield from self._flag(
                            module, context, local_sets, comp.iter, "comprehension"
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    yield from self._flag(
                        module, context, local_sets, node.args[0], f"{func.id}()"
                    )
                elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
                    yield from self._flag(module, context, local_sets, node.args[0], "str.join")

    # ------------------------------------------------------------------ #
    def _flag(self, module, context, local_sets, expr, sink) -> Iterable[Finding]:
        if not self._is_set_expr(expr, context, local_sets):
            return
        yield self.finding(
            module,
            expr,
            f"unordered set flows into order-sensitive {sink}; wrap in sorted() "
            "so output is independent of PYTHONHASHSEED",
            symbol=sink,
        )

    def _is_set_expr(self, node, context, local_sets) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id in ("set", "frozenset") or func.id in context.set_returning
            if isinstance(func, ast.Attribute):
                return func.attr in context.set_returning
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            # Set algebra (union/intersection/difference) stays a set.
            return self._is_set_expr(node.left, context, local_sets) and self._is_set_expr(
                node.right, context, local_sets
            )
        return False

    # ------------------------------------------------------------------ #
    @staticmethod
    def _set_typed_names(module, context) -> Set[str]:
        """Local names statically known to hold sets.

        Tracked per module rather than per scope: names annotated with a
        set type (parameters or AnnAssign) and names assigned directly
        from a set literal/constructor.  Scope-blind tracking slightly
        over-approximates, which is the right direction for a
        determinism linter.
        """
        annotated: Set[str] = set()
        assigned: Set[str] = set()
        reassigned_non_set: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = (
                    list(node.args.posonlyargs)
                    + list(node.args.args)
                    + list(node.args.kwonlyargs)
                )
                for arg in args:
                    if arg.annotation is not None and _is_set_annotation(arg.annotation):
                        annotated.add(arg.arg)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_set_annotation(node.annotation):
                    annotated.add(node.target.id)
            elif isinstance(node, ast.Assign):
                is_set = isinstance(node.value, (ast.Set, ast.SetComp)) or (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in ("set", "frozenset")
                )
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        (assigned if is_set else reassigned_non_set).add(target.id)
        # A name also bound to a non-set somewhere is ambiguous; keep it
        # only when an annotation pinned it.
        return annotated | (assigned - reassigned_non_set)


def _is_set_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.startswith(("Set[", "FrozenSet[", "set[", "frozenset["))
    return False
