"""The built-in rule battery.

Importing this package registers every built-in contract rule in
:data:`repro.lint.rules_registry.RULES`.  Rule modules are grouped by
contract family:

* :mod:`repro.lint.rules.rng` — RNG seeding and wall-clock discipline
  (``RNG001``–``RNG004``);
* :mod:`repro.lint.rules.state` — frozen-config immutability and lock
  discipline (``FRZ001``, ``LCK001``);
* :mod:`repro.lint.rules.ordering` — unordered-set iteration hazards
  (``ORD001``);
* :mod:`repro.lint.rules.registry_hygiene` — registry naming, duplicate
  and wiring checks (``REG001``–``REG003``).
"""

from repro.lint.rules import ordering, registry_hygiene, rng, state

__all__ = ["rng", "state", "ordering", "registry_hygiene"]
