"""RNG and wall-clock discipline: every stochastic draw from a derived seed.

The §V.A byte-identity guarantee (healing results identical across
backends, batching modes and executors) holds because every random draw
comes from a position-tagged seed derived from the platform seed, and
nothing on a deterministic path reads OS entropy or the wall clock.
These rules are the static half of that contract; the behavioural half
lives in ``tests/test_rng_determinism.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules_registry import LintRule, iter_calls, register_rule

__all__ = [
    "UnseededDefaultRngRule",
    "GlobalNumpyDrawRule",
    "StdlibRandomRule",
    "WallClockRule",
]

#: Module-level numpy.random functions drawing from (or reseeding) the
#: hidden global RandomState — irreproducible across call orders.
_LEGACY_NUMPY_DRAWS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "exponential",
        "gamma",
        "geometric",
        "integers",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Wall-clock reads banned on deterministic paths.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Files where wall-clock reads are part of the *service* contract, not a
#: determinism hazard: lease deadlines, heartbeat cadence and long-poll
#: timeouts measure real elapsed time by design, and the work-queue
#: determinism note guarantees they can never change run results (every
#: attempt feeds the identical payload through the identical worker
#: contract).  Matched by repo-relative path suffix.
WALL_CLOCK_ALLOWLIST = {
    "repro/service/queue.py": "lease deadlines and expiry-requeue timing",
    "repro/service/server.py": "long-poll deadlines and service uptime",
    "repro/service/worker.py": "heartbeat cadence and idle-poll backoff",
    "repro/service/experiment.py": "serve/worker CLI poll loops",
}


@register_rule
class UnseededDefaultRngRule(LintRule):
    id = "RNG001"
    name = "rng-unseeded-default-rng"
    summary = "no argument-less default_rng()/RandomState() under any import alias"
    contract = (
        "Every generator must be seeded by its caller or derived from a "
        "documented seed; an empty `default_rng()` (or `RandomState()`) "
        "call falls back to OS entropy and makes fault behaviour "
        "irreproducible.  Resolution is alias-aware: `from numpy.random "
        "import default_rng as rng_fn; rng_fn()` is the same violation."
    )

    def check(self, module, context) -> Iterable[Finding]:
        for call in iter_calls(module.tree):
            resolved = module.imports.resolve(call.func)
            if resolved not in ("numpy.random.default_rng", "numpy.random.RandomState"):
                continue
            if call.args or call.keywords:
                continue
            yield self.finding(
                module,
                call,
                "argument-less generator construction draws OS entropy; seed it "
                "from a derived SeedSequence (see docs/determinism.md)",
                symbol=resolved,
            )


@register_rule
class GlobalNumpyDrawRule(LintRule):
    id = "RNG002"
    name = "rng-global-numpy-draw"
    summary = "no module-level np.random.<draw>() calls (hidden global state)"
    contract = (
        "Module-level numpy.random draw functions (np.random.randint, "
        "np.random.shuffle, np.random.seed, ...) share one hidden global "
        "RandomState whose stream depends on call order across the whole "
        "process — poison for executor-independent byte identity.  Draw "
        "from an explicitly seeded Generator instead."
    )

    def check(self, module, context) -> Iterable[Finding]:
        for call in iter_calls(module.tree):
            resolved = module.imports.resolve(call.func)
            if not resolved or not resolved.startswith("numpy.random."):
                continue
            tail = resolved.rsplit(".", 1)[1]
            if tail not in _LEGACY_NUMPY_DRAWS:
                continue
            yield self.finding(
                module,
                call,
                f"{resolved}() draws from the hidden global RandomState; use a "
                "seeded Generator derived from the platform seed",
                symbol=resolved,
            )


@register_rule
class StdlibRandomRule(LintRule):
    id = "RNG003"
    name = "rng-stdlib-random"
    summary = "no stdlib random module usage on deterministic paths"
    contract = (
        "The stdlib `random` module is either global-state (module "
        "functions, `random.seed`) or OS-entropy (`SystemRandom`, "
        "argument-less `Random()`); none of its streams are derivable "
        "from the experiment spec.  All randomness goes through "
        "numpy Generators seeded from the platform seed."
    )

    def check(self, module, context) -> Iterable[Finding]:
        for call in iter_calls(module.tree):
            resolved = module.imports.resolve(call.func)
            if not resolved or not (resolved == "random" or resolved.startswith("random.")):
                continue
            # random.Random(seed) is an explicitly seeded instance; only the
            # argument-less form falls back to OS entropy.
            if resolved == "random.Random" and (call.args or call.keywords):
                continue
            yield self.finding(
                module,
                call,
                f"{resolved}() uses stdlib random (global state / OS entropy); "
                "use a numpy Generator derived from the platform seed",
                symbol=resolved,
            )


@register_rule
class WallClockRule(LintRule):
    id = "RNG004"
    name = "rng-wall-clock"
    summary = "no wall-clock reads on deterministic paths (service sites allowlisted)"
    contract = (
        "time.time()/time.monotonic()/datetime.now() and friends read "
        "state that differs on every run; on a deterministic path they "
        "are entropy by another name.  The service layer's lease/"
        "heartbeat sites are allowlisted (real elapsed time is their "
        "contract and can never change run results); telemetry-only "
        "sites carry an inline `# repro-lint: disable=RNG004` with "
        "justification."
    )

    def check(self, module, context) -> Iterable[Finding]:
        allowlisted = any(
            module.rel.endswith(suffix) for suffix in WALL_CLOCK_ALLOWLIST
        )
        if allowlisted:
            return
        for call in iter_calls(module.tree):
            resolved = module.imports.resolve(call.func)
            if resolved not in _WALL_CLOCK_CALLS:
                continue
            yield self.finding(
                module,
                call,
                f"{resolved}() is a wall-clock read on a deterministic path; "
                "derive timing from the platform's modelled clock, or disable "
                "inline with a justification if this is telemetry only",
                symbol=resolved,
            )
