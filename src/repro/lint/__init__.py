"""Contract linter: AST-based static analysis of the repo's own invariants.

The behavioural test suite proves the determinism contracts hold on the
paths it exercises; this package proves nobody *wrote* code that could
break them anywhere.  It is a small, dependency-free (stdlib ``ast``)
static-analysis framework:

* :mod:`repro.lint.rules` — the built-in battery: RNG seeding
  (``RNG001``–``RNG003``), wall-clock discipline (``RNG004``),
  frozen-config immutability (``FRZ001``), lock discipline (``LCK001``),
  ordered-iteration hazards (``ORD001``) and registry hygiene
  (``REG001``–``REG003``);
* :mod:`repro.lint.rules_registry` — rules are registry strategies like
  everything else in the project, so plugins can add their own;
* :mod:`repro.lint.runner` — :func:`run_lint` and the JSON-stable
  :class:`LintReport` with the ``0/1/2`` exit-code contract;
* :mod:`repro.lint.baseline` — acknowledged findings with mandatory
  justifications and stale-entry pruning warnings;
* :mod:`repro.lint.experiment` — the ``repro-ehw lint`` subcommand.

Inline suppression: ``# repro-lint: disable=RNG004  -- why`` on (or
directly above) the offending line; ``disable-file=`` for a whole
module.  See ``docs/determinism.md`` for the contract catalogue.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import FINDING_SCHEMA_VERSION, Finding
from repro.lint.rules_registry import RULES, LintRule, all_rules, register_rule, resolve_rules
from repro.lint.runner import LintReport, find_repo_root, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FINDING_SCHEMA_VERSION",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "all_rules",
    "find_repo_root",
    "register_rule",
    "resolve_rules",
    "run_lint",
]
