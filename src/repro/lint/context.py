"""Cross-module facts the project-aware rules share.

Built once per lint run, the :class:`ProjectContext` answers the
questions single-module AST walks cannot: which class names are frozen
dataclasses (so a mutation through *any* annotated parameter is caught),
which functions return sets (so iterating their result unsorted is an
ordering hazard), and every registry registration in the project (so
duplicate or non-kebab-case names and unwired modules are caught before
import time would).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.lint.source import SourceModule

__all__ = ["Registration", "ProjectContext"]

#: Registry globals whose ``.register("name", ...)`` calls are tracked,
#: mapped to the registry kind they hold.
REGISTRY_GLOBALS = {
    "DRIVERS": "driver",
    "SELF_HEALERS": "self_healing",
    "TASKS": "task",
    "EXPERIMENTS": "experiment",
    "BACKENDS": "backend",
    "SCENARIOS": "scenario",
    "EXECUTORS": "executor",
    "RUNNERS": "runner",
    "RULES": "lint_rule",
}

#: Helper functions that register under a fixed kind with the name first.
REGISTER_HELPERS = {
    "register_backend": "backend",
    "register_executor": "executor",
    "register_runner": "runner",
    "register_scenario": "scenario",
}


@dataclass(frozen=True)
class Registration:
    """One static registry registration site."""

    kind: str
    name: str
    path: str
    line: int
    col: int
    #: ``replace=True`` or guarded by an ``if name not in REGISTRY`` test —
    #: deliberate re-registration, excluded from duplicate detection.
    guarded: bool = False


@dataclass
class ProjectContext:
    """Facts collected in one pass over every module under lint."""

    modules: List[SourceModule] = field(default_factory=list)
    frozen_classes: Set[str] = field(default_factory=set)
    set_returning: Set[str] = field(default_factory=set)
    registrations: List[Registration] = field(default_factory=list)
    module_by_rel: Dict[str, SourceModule] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "ProjectContext":
        context = cls(modules=list(modules))
        for module in modules:
            context.module_by_rel[module.rel] = module
            context._collect_frozen_classes(module)
            context._collect_set_returning(module)
            context._collect_registrations(module)
        return context

    # ------------------------------------------------------------------ #
    def _collect_frozen_classes(self, module: SourceModule) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                resolved = module.imports.resolve(decorator.func)
                is_dataclass = resolved in ("dataclasses.dataclass", "dataclass") or (
                    isinstance(decorator.func, ast.Name)
                    and decorator.func.id == "dataclass"
                )
                if not is_dataclass:
                    continue
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        self.frozen_classes.add(node.name)

    def _collect_set_returning(self, module: SourceModule) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.returns is not None and _is_set_annotation(node.returns):
                self.set_returning.add(node.name)

    # ------------------------------------------------------------------ #
    def _collect_registrations(self, module: SourceModule) -> None:
        loop_literals = _module_level_loop_literals(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kind, name_node in _registration_args(node):
                guarded = _has_replace_true(node)
                for name, at in _literal_names(name_node, loop_literals):
                    self.registrations.append(
                        Registration(
                            kind=kind,
                            name=name,
                            path=module.rel,
                            line=at.lineno,
                            col=at.col_offset,
                            guarded=guarded,
                        )
                    )

    # ------------------------------------------------------------------ #
    def registering_modules(self, kind: str) -> Set[str]:
        """Rel paths of modules with at least one ``kind`` registration."""
        return {reg.path for reg in self.registrations if reg.kind == kind}


# ---------------------------------------------------------------------- #
# Collection helpers
# ---------------------------------------------------------------------- #
def _is_set_annotation(node: ast.AST) -> bool:
    """True for ``set``/``frozenset``/``Set[...]``/``FrozenSet[...]`` returns."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.startswith(("Set[", "FrozenSet[", "set[", "frozenset["))
    return False


def _registration_args(call: ast.Call):
    """Yield ``(kind, name_node)`` for every registry registration shape."""
    func = call.func
    # register("kind", "name", ...) — the repro.api.registry helper.
    if isinstance(func, ast.Name) and func.id == "register" and len(call.args) >= 2:
        kind_node = call.args[0]
        if isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str):
            yield kind_node.value, call.args[1]
        return
    # Fixed-kind helpers: register_backend("name"), register_runner("name"), ...
    if isinstance(func, ast.Name) and func.id in REGISTER_HELPERS and call.args:
        yield REGISTER_HELPERS[func.id], call.args[0]
        return
    # register_experiment(ExperimentSpec(name="new-ea", ...))
    if isinstance(func, ast.Name) and func.id == "register_experiment" and call.args:
        spec = call.args[0]
        if isinstance(spec, ast.Call):
            for keyword in spec.keywords:
                if keyword.arg == "name":
                    yield "experiment", keyword.value
        return
    # REGISTRY.register("name", ...) on a known registry global.
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "register"
        and isinstance(func.value, ast.Name)
        and func.value.id in REGISTRY_GLOBALS
        and call.args
    ):
        yield REGISTRY_GLOBALS[func.value.id], call.args[0]


def _has_replace_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "replace":
            return not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is False
            )
    return False


def _module_level_loop_literals(tree: ast.Module) -> Dict[str, List[ast.Constant]]:
    """Names bound by module-level ``for X in ("a", "b", ...)`` loops.

    Registration-in-a-loop (the imaging-task pattern in
    ``repro/api/builtins.py``) registers names that are literals one hop
    away; expanding them keeps the hygiene rules honest there.
    """
    literals: Dict[str, List[ast.Constant]] = {}
    for node in tree.body:
        if not isinstance(node, ast.For) or not isinstance(node.target, ast.Name):
            continue
        if isinstance(node.iter, (ast.Tuple, ast.List)):
            elements = [
                element
                for element in node.iter.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            ]
            if elements and len(elements) == len(node.iter.elts):
                literals[node.target.id] = elements
    return literals


def _literal_names(
    name_node: ast.AST, loop_literals: Dict[str, List[ast.Constant]]
):
    """Resolve a registration's name argument to literal strings.

    Yields ``(name, node)`` pairs: the node carries the location blamed
    in the finding (the loop literal itself for loop-expanded names).
    Non-literal names that cannot be expanded are skipped — static
    analysis stays honest about what it can see.
    """
    if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
        yield name_node.value, name_node
        return
    if isinstance(name_node, ast.Name) and name_node.id in loop_literals:
        for element in loop_literals[name_node.id]:
            yield element.value, element
