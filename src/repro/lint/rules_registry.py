"""The lint-rule registry: contract checkers looked up by name, like strategies.

Rules register in :data:`RULES` — a :class:`repro.api.registry.Registry`,
the same string-keyed mechanism the drivers/backends/experiments use — so
third-party plugins can add project-specific contract checkers without
touching any dispatch code.  Every rule is addressable two ways: its
stable id (``RNG001``, used in ``# repro-lint: disable=`` comments and
baselines) and its kebab-case registry name
(``rng-unseeded-default-rng``, used in docs and ``--rule`` flags).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence

from repro.api.registry import Registry, UnknownStrategyError
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import ProjectContext
    from repro.lint.source import SourceModule

__all__ = ["LintRule", "RULES", "register_rule", "resolve_rules", "all_rules"]

#: The process-wide lint-rule registry, keyed by kebab-case rule name.
RULES = Registry("lint rule")


class LintRule:
    """Base class for one contract checker.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`~repro.lint.findings.Finding` per violation.
    ``check`` receives the parsed module plus the cross-module
    :class:`~repro.lint.context.ProjectContext` (frozen-dataclass names,
    registry registrations, set-returning functions), so rules can be
    project-aware without re-walking the tree themselves.
    """

    #: Stable id used in suppressions and baselines (e.g. ``RNG001``).
    id: str = ""
    #: Kebab-case registry name (e.g. ``rng-unseeded-default-rng``).
    name: str = ""
    #: One-line summary shown by ``--list-rules``.
    summary: str = ""
    #: The enforced contract, in full, for ``docs/determinism.md``.
    contract: str = ""

    def check(
        self, module: "SourceModule", context: "ProjectContext"
    ) -> Iterable[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def finding(
        self,
        module: "SourceModule",
        node: ast.AST,
        message: str,
        symbol: Optional[str] = None,
    ) -> Finding:
        """Build a finding for ``node`` with the module's location info."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            name=self.name,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            symbol=symbol,
            snippet=module.line_text(line),
        )


def register_rule(rule_cls: type) -> type:
    """Class decorator registering a :class:`LintRule` subclass in :data:`RULES`."""
    if not rule_cls.id or not rule_cls.name:
        raise ValueError(f"lint rule {rule_cls.__name__} must set both id and name")
    RULES.register(rule_cls.name, rule_cls)
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the battery registers every built-in rule.
    import repro.lint.rules  # noqa: F401


def all_rules() -> List[LintRule]:
    """One instance of every registered rule, in registration order."""
    _ensure_loaded()
    return [RULES.get(name)() for name in RULES.names()]


def resolve_rules(selectors: Optional[Sequence[str]]) -> List[LintRule]:
    """Rules matching ``selectors`` (ids or names); all rules when ``None``."""
    rules = all_rules()
    if not selectors:
        return rules
    by_key = {}
    for rule in rules:
        by_key[rule.id.upper()] = rule
        by_key[rule.name] = rule
    picked: List[LintRule] = []
    for selector in selectors:
        key = selector.strip()
        rule = by_key.get(key.upper()) or by_key.get(key.lower())
        if rule is None:
            raise UnknownStrategyError(
                "lint rule", selector, sorted({r.id for r in rules} | set(RULES.names()))
            )
        if rule not in picked:
            picked.append(rule)
    return picked


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every ``ast.Call`` in ``tree`` (decorators included — they are
    plain expressions in the tree)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
