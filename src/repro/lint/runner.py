"""The lint driver: collect files, build context, run rules, classify findings.

:func:`run_lint` is the single entry point the CLI subcommand, the tier-1
self-host test and the CI job all share.  It produces a
:class:`LintReport` whose JSON form is deterministic (sorted findings,
sorted keys) and whose :attr:`~LintReport.exit_code` encodes the CI
contract: ``0`` clean, ``1`` active findings, ``2`` usage/parse errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.baseline import BASELINE_FILENAME, Baseline, BaselineEntry
from repro.lint.context import ProjectContext
from repro.lint.findings import FINDING_SCHEMA_VERSION, Finding
from repro.lint.rules_registry import LintRule, resolve_rules
from repro.lint.source import SourceModule, parse_module

__all__ = ["LintReport", "run_lint", "find_repo_root"]


def find_repo_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding ``pyproject.toml`` or ``.git``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return current


@dataclass
class LintReport:
    """Everything one lint run decided, JSON-serialisable and byte-stable."""

    root: str
    paths: List[str]
    rule_ids: List[str]
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    baseline_path: Optional[str] = None
    n_files: int = 0

    # ------------------------------------------------------------------ #
    @property
    def counts(self) -> Dict[str, int]:
        return {
            "files": self.n_files,
            "findings": len(self.findings),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": len(self.stale_baseline),
            "errors": len(self.errors),
        }

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": FINDING_SCHEMA_VERSION,
            "root": self.root,
            "paths": list(self.paths),
            "rules": list(self.rule_ids),
            "baseline": self.baseline_path,
            "counts": self.counts,
            "exit_code": self.exit_code,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "errors": list(self.errors),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LintReport":
        report = cls(
            root=data["root"],
            paths=list(data["paths"]),
            rule_ids=list(data["rules"]),
            findings=[Finding.from_dict(item) for item in data["findings"]],
            suppressed=[Finding.from_dict(item) for item in data["suppressed"]],
            baselined=[Finding.from_dict(item) for item in data["baselined"]],
            stale_baseline=[BaselineEntry.from_dict(item) for item in data["stale_baseline"]],
            errors=list(data["errors"]),
            baseline_path=data.get("baseline"),
        )
        report.n_files = data.get("counts", {}).get("files", 0)
        return report

    # ------------------------------------------------------------------ #
    def render_lines(self) -> List[str]:
        """The human-readable report, one string per output line."""
        lines: List[str] = []
        for error in self.errors:
            lines.append(f"error: {error}")
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(
                f"warning: stale baseline entry {entry.rule} @ {entry.path} "
                f"({entry.symbol}) — the violation is gone; prune it from "
                f"{self.baseline_path or BASELINE_FILENAME}"
            )
        counts = self.counts
        summary = (
            f"{counts['files']} file(s): {counts['findings']} finding(s), "
            f"{counts['suppressed']} suppressed, {counts['baselined']} baselined"
        )
        if counts["stale_baseline"]:
            summary += f", {counts['stale_baseline']} stale baseline entr(y/ies)"
        if counts["errors"]:
            summary += f", {counts['errors']} error(s)"
        lines.append(summary)
        return lines


# ---------------------------------------------------------------------- #
def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(resolved)
    return sorted(files)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint ``paths`` and classify every finding.

    Parameters
    ----------
    paths:
        Files or directories (directories are walked for ``*.py``).
    rules:
        Rule selectors (ids or kebab names); all rules when ``None``.
    root:
        Repo root for relative paths and baseline discovery; auto-detected
        from the first path (walking up to ``pyproject.toml``/``.git``)
        when ``None``.
    baseline_path:
        Explicit baseline file.  When ``None`` and ``use_baseline`` is
        true, ``<root>/lint-baseline.json`` is loaded if present.
    use_baseline:
        ``False`` disables baseline matching entirely (``--no-baseline``).
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        anchor = path_objs[0] if path_objs else Path.cwd()
        root = find_repo_root(anchor if anchor.exists() else Path.cwd())
    root = root.resolve()

    rule_objs: List[LintRule] = resolve_rules(rules)
    report = LintReport(
        root=str(root),
        paths=[str(p) for p in paths],
        rule_ids=[rule.id for rule in rule_objs],
    )

    baseline: Optional[Baseline] = None
    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        report.baseline_path = str(baseline_path)
    elif use_baseline:
        default_path = root / BASELINE_FILENAME
        if default_path.exists():
            baseline = Baseline.load(default_path)
            report.baseline_path = str(default_path)

    modules: List[SourceModule] = []
    for file_path in _collect_files(path_objs):
        if not file_path.exists():
            report.errors.append(f"no such file: {file_path}")
            continue
        try:
            modules.append(parse_module(file_path, _rel_path(file_path, root)))
        except SyntaxError as exc:
            report.errors.append(f"syntax error in {_rel_path(file_path, root)}: {exc.msg}")
    report.n_files = len(modules)

    context = ProjectContext.build(modules)
    for module in modules:
        for rule in rule_objs:
            for finding in rule.check(module, context):
                if module.is_suppressed(finding.rule, finding.name, finding.line):
                    report.suppressed.append(finding)
                elif baseline is not None and baseline.matches(finding):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)

    report.findings.sort(key=lambda f: f.sort_key)
    report.suppressed.sort(key=lambda f: f.sort_key)
    report.baselined.sort(key=lambda f: f.sort_key)
    if baseline is not None:
        # An entry is only stale when its file was actually linted this
        # run; linting a subset must not flag the rest of the baseline.
        linted = {module.rel for module in modules}
        report.stale_baseline = sorted(
            (entry for entry in baseline.stale_entries() if entry.path in linted),
            key=lambda e: e.key,
        )
    return report
