"""The committed lint baseline: acknowledged findings with justifications.

A baseline entry matches a finding on ``(rule, path, symbol-or-snippet)``
— deliberately *not* on line numbers, so edits above a baselined site do
not churn the file.  Every entry carries a mandatory ``justification``;
an entry no matching finding consumes is *stale* and reported as a
warning so the baseline only ever shrinks honestly.

The file format is plain JSON, committed at the repo root as
``lint-baseline.json``::

    {
      "schema_version": 1,
      "entries": [
        {"rule": "REG001", "path": "src/repro/api/builtins.py",
         "symbol": "driver:two_level",
         "justification": "pre-1.0 public config value; renaming breaks stored configs"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "BASELINE_FILENAME", "BASELINE_SCHEMA_VERSION"]

BASELINE_FILENAME = "lint-baseline.json"
BASELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding, matched structurally rather than by line."""

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BaselineEntry":
        entry = cls(
            rule=data["rule"],
            path=data["path"],
            symbol=data["symbol"],
            justification=data.get("justification", ""),
        )
        if not entry.justification.strip():
            raise ValueError(
                f"baseline entry {entry.rule} @ {entry.path} ({entry.symbol}) "
                "has no justification; every acknowledged violation must say why"
            )
        return entry


class Baseline:
    """The set of acknowledged findings, with match bookkeeping."""

    def __init__(self, entries: Sequence[BaselineEntry] = (), path: Optional[Path] = None):
        self.entries = list(entries)
        self.path = path
        self._by_key = {entry.key: entry for entry in self.entries}
        self._matched: set = set()

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema_version {version!r} in {path} "
                f"(expected {BASELINE_SCHEMA_VERSION})"
            )
        entries = [BaselineEntry.from_dict(item) for item in data.get("entries", [])]
        return cls(entries, path=path)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding], justification: str) -> "Baseline":
        """A fresh baseline acknowledging ``findings`` (for ``--write-baseline``)."""
        entries = []
        seen = set()
        for finding in sorted(findings, key=lambda f: f.sort_key):
            rule, path, symbol = finding.baseline_key()
            key = (rule, path, symbol)
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(rule=rule, path=path, symbol=symbol, justification=justification)
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "entries": [entry.to_dict() for entry in sorted(self.entries, key=lambda e: e.key)],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------ #
    def matches(self, finding: Finding) -> bool:
        """True (and marks the entry used) when ``finding`` is acknowledged."""
        key = finding.baseline_key()
        entry = self._by_key.get(key)
        if entry is None:
            return False
        self._matched.add(entry.key)
        return True

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries no finding consumed — fixed violations to prune."""
        return [entry for entry in self.entries if entry.key not in self._matched]
