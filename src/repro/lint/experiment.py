"""The ``repro-ehw lint`` subcommand: the contract linter as a CLI plugin.

Registered through the same :class:`~repro.api.experiment.ExperimentSpec`
mechanism as the paper experiments, so the linter inherits the central
``--json`` artifact plumbing for free and CI consumes one artifact shape
everywhere.  The artifact's ``results`` is the full
:class:`~repro.lint.runner.LintReport` dict, including ``exit_code`` —
which :func:`repro.cli.main` propagates as the process exit code
(``0`` clean, ``1`` findings, ``2`` usage/parse errors).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.api.artifact import RunArtifact
from repro.api.experiment import ExperimentSpec, print_table, register_experiment
from repro.api.registry import UnknownStrategyError
from repro.lint.baseline import Baseline
from repro.lint.runner import LintReport, run_lint
from repro.lint.rules_registry import all_rules

__all__ = ["lint_main"]


def _configure_lint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID|NAME",
        help="restrict to one rule (repeatable); accepts ids (RNG001) or "
             "registry names (rng-unseeded-default-rng)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of acknowledged findings "
             "(default: <repo-root>/lint-baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a fresh baseline to FILE and "
             "exit 0; entries get a placeholder justification to replace "
             "before committing",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repo root for relative paths and baseline discovery "
             "(default: auto-detected from the first PATH)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered contract rules and exit",
    )


def lint_main(args: argparse.Namespace) -> RunArtifact:
    """Run the contract linter from parsed CLI arguments."""
    config = {
        "paths": list(args.paths),
        "rules": list(args.rule) if args.rule else None,
        "baseline": args.baseline,
        "no_baseline": bool(args.no_baseline),
        "root": args.root,
    }
    if args.list_rules:
        rules = [
            {"id": rule.id, "name": rule.name, "summary": rule.summary}
            for rule in all_rules()
        ]
        return RunArtifact(
            kind="lint",
            config=config,
            results={"rules": rules, "exit_code": 0},
            timing={},
        )
    try:
        report = run_lint(
            args.paths,
            rules=args.rule,
            root=Path(args.root) if args.root else None,
            baseline_path=Path(args.baseline) if args.baseline else None,
            use_baseline=not (args.no_baseline or args.write_baseline),
        )
    except (UnknownStrategyError, ValueError) as exc:
        return RunArtifact(
            kind="lint",
            config=config,
            results={"errors": [str(exc)], "exit_code": 2},
            timing={},
        )
    if args.write_baseline:
        target = Path(args.write_baseline)
        baseline = Baseline.from_findings(
            report.findings,
            justification=(
                "PENDING REVIEW: recorded by --write-baseline; replace with "
                "a real justification before committing"
            ),
        )
        baseline.save(target)
        return RunArtifact(
            kind="lint",
            config=config,
            results={
                "baseline_written": str(target),
                "entries": len(baseline.entries),
                "exit_code": 0,
            },
            timing={},
        )
    return RunArtifact(kind="lint", config=config, results=report.to_dict(), timing={})


def _render_lint(artifact: RunArtifact) -> None:
    results = artifact.results
    if "rules" in results and "findings" not in results:
        print_table(
            "Registered contract rules",
            results["rules"],
            ["id", "name", "summary"],
        )
        return
    if "baseline_written" in results:
        print(
            f"baseline with {results['entries']} entr(y/ies) written to "
            f"{results['baseline_written']}"
        )
        return
    if "findings" not in results:
        for error in results.get("errors", []):
            print(f"error: {error}")
        return
    report = LintReport.from_dict(results)
    for line in report.render_lines():
        print(line)


register_experiment(ExperimentSpec(
    name="lint",
    help="run the determinism/concurrency contract linter over the source tree",
    configure=_configure_lint,
    run=lint_main,
    render=_render_lint,
))
