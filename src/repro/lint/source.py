"""Parsed source modules: AST, inline suppressions, and import resolution.

Two facilities every rule builds on live here:

* :class:`SourceModule` — one parsed file, its repo-relative path, and
  its ``# repro-lint: disable=RULE`` suppression map;
* :class:`ImportMap` — alias-aware name resolution, so a call spelled
  ``rng_fn()`` after ``from numpy.random import default_rng as rng_fn``
  resolves to the canonical ``numpy.random.default_rng`` no matter how
  the import was written.  This is exactly what the old regex scan in
  ``tests/test_rng_determinism.py`` could not see.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Optional, Set

__all__ = ["SourceModule", "ImportMap", "parse_module"]

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


def _split_rules(raw: str) -> Set[str]:
    # Everything after a `--` is the human justification, not a rule list:
    # `# repro-lint: disable=RNG004 -- telemetry-only timing`.
    head = raw.split("--")[0]
    return {token.strip() for token in head.split(",") if token.strip()}


class SourceModule:
    """One file under lint: text, AST, and its suppression map.

    Suppression scope follows the common linter convention: a disable
    comment applies to its own physical line, and a comment-only line
    applies to the next code line below it.  ``disable-file=`` anywhere
    suppresses the rule for the whole module.
    """

    def __init__(self, path: Path, rel: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.imports = ImportMap(tree)
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        self._collect_suppressions()

    # ------------------------------------------------------------------ #
    def _comment_disables(self) -> Dict[int, Set[str]]:
        """Per-line disable sets from *actual* comment tokens.

        Tokenising (rather than regexing raw lines) keeps a docstring
        that merely talks about ``# repro-lint: disable=...`` from
        counting as a suppression.  ``disable-file=`` comments feed
        :attr:`file_disables` directly.
        """
        per_line: Dict[int, Set[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse succeeded
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno = token.start[0]
            for match in _DISABLE_FILE_RE.finditer(token.string):
                self.file_disables |= _split_rules(match.group(1))
            for match in _DISABLE_RE.finditer(token.string):
                per_line.setdefault(lineno, set()).update(_split_rules(match.group(1)))
        return per_line

    def _collect_suppressions(self) -> None:
        comment_disables = self._comment_disables()
        pending: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            here = comment_disables.get(lineno, set())
            stripped = line.strip()
            if stripped.startswith("#"):
                # Comment-only line: its disables carry to the next code line.
                pending |= here
                continue
            if not stripped:
                continue
            rules = here | pending
            pending = set()
            if rules:
                self.line_disables[lineno] = (
                    self.line_disables.get(lineno, set()) | rules
                )

    def is_suppressed(self, rule_id: str, rule_name: str, lineno: int) -> bool:
        """True when an inline disable covers ``rule`` at ``lineno``."""
        keys = {rule_id.upper(), rule_name.lower(), "all"}
        if any(token.upper() in keys or token.lower() in keys for token in self.file_disables):
            return True
        tokens = self.line_disables.get(lineno, ())
        return any(token.upper() in keys or token.lower() in keys for token in tokens)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class ImportMap:
    """Alias table from local names to canonical dotted import paths."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # `import numpy.random` binds `numpy`; attribute
                        # chains resolve through the root name.
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: never numpy/random/time
                    continue
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted path of a Name/Attribute chain, if imported.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` (after
        ``import numpy as np``); local objects (``self.rng``) resolve to
        ``None``.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def parse_module(path: Path, rel: str) -> SourceModule:
    """Parse ``path`` into a :class:`SourceModule` (raises ``SyntaxError``)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceModule(path=path, rel=rel, text=text, tree=tree)
