"""The finding record every contract rule emits.

A :class:`Finding` pinpoints one contract violation: which rule fired,
where (repo-relative path, line, column), what the violating code looks
like, and — when the rule can name it — the *symbol* involved (a
registered name, a guarded attribute, a banned call).  Findings sort and
serialise deterministically so the ``--json`` report and the committed
baseline are byte-stable across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["Finding", "FINDING_SCHEMA_VERSION"]

#: Version of the ``--json`` findings wire format.
FINDING_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location.

    Attributes
    ----------
    rule:
        Rule id (``RNG001``, ``LCK001``, ...).
    name:
        The rule's kebab-case name (``rng-unseeded-default-rng``).
    path:
        Repo-relative posix path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable statement of the violation and the fix.
    symbol:
        Stable identifier of the violating entity when the rule can name
        one (the registered name, the written attribute, the resolved
        call).  Baseline entries match on it so they survive line drift.
    snippet:
        The stripped source line, for report readability.
    """

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str
    symbol: Optional[str] = None
    snippet: Optional[str] = field(default=None, compare=False)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """What a baseline entry matches on: rule, file, stable context.

        The context is the symbol when the rule provides one (robust to
        the file being edited above the finding) and the stripped source
        line otherwise.
        """
        return (self.rule, self.path, self.symbol or (self.snippet or "").strip())

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.symbol is not None:
            payload["symbol"] = self.symbol
        if self.snippet is not None:
            payload["snippet"] = self.snippet
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"],
            name=data["name"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
            symbol=data.get("symbol"),
            snippet=data.get("snippet"),
        )

    def render(self) -> str:
        """One-line report form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
