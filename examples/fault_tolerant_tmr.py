#!/usr/bin/env python3
"""Fault-tolerant TMR operation with autonomous recovery (paper §V.B, Fig. 20).

Demonstrates the parallel processing mode used as Triple Modular Redundancy:

1. a denoising circuit is evolved and deployed on all three arrays;
2. the hardware-style fitness voter monitors the arrays while the pixel
   voter produces the mission output;
3. a permanent PE-level fault is injected in one array — the fitness voter
   detects the divergence while the pixel voter keeps the output stream at
   healthy quality;
4. the self-healing strategy scrubs (to rule out a transient SEU),
   classifies the fault as permanent, and launches an evolution-by-imitation
   recovery that re-learns the filter from a healthy neighbour without any
   reference image.

Run with:  python examples/fault_tolerant_tmr.py
"""

from __future__ import annotations

from repro.api import (
    EvolutionConfig,
    EvolutionSession,
    PlatformConfig,
    SelfHealingConfig,
    TaskSpec,
)
from repro.array.genotype import Genotype
from repro.imaging.metrics import sae

SEED = 11


def main() -> None:
    task = TaskSpec(task="salt_pepper_denoise", image_side=48, seed=SEED, noise_level=0.15)
    pair = task.build()
    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(strategy="parallel", n_generations=800,
                        n_offspring=9, mutation_rate=4, seed=SEED),
    )
    platform = session.platform

    # ------------------------------------------------------------------ #
    # 1. Initial evolution and TMR deployment.
    # ------------------------------------------------------------------ #
    print("Evolving the working circuit (parallel evolution mode)...")
    artifact = session.evolve(task, seed_genotype=Genotype.identity(platform.spec))
    evolved = artifact.raw
    working = evolved.best_genotypes[0]
    print(f"  best fitness after {evolved.n_generations} generations: "
          f"{evolved.overall_best_fitness():.0f}")

    healer = session.heal(
        SelfHealingConfig(
            strategy="tmr",
            imitation_generations=600,
            imitation_target_fitness=100.0,
            n_offspring=9,
            mutation_rate=3,
            seed=SEED + 1,
        ),
        calibration_image=pair.training,
        calibration_reference=pair.reference,
    )
    healer.setup(working)
    print("\nTMR deployed: the same circuit runs on all three arrays.")
    print(f"  per-array fitness: {healer.array_fitnesses()}")

    healthy_voted = healer.voted_output(pair.training)
    print(f"  voted mission output MAE: {sae(healthy_voted, pair.reference):.0f}")

    # ------------------------------------------------------------------ #
    # 2. Permanent fault injection.
    # ------------------------------------------------------------------ #
    position = platform.find_sensitive_position(2, pair.training)
    print(f"\nInjecting a permanent fault (LPD) in array 2 at PE {position}...")
    platform.inject_permanent_fault(2, *position)

    vote = healer.vote()
    print(f"  fitness voter: fault detected = {vote.fault_detected}, "
          f"diverging array = {vote.outlier_index}")
    print(f"  per-array fitness: {healer.array_fitnesses()}")
    faulty_voted = healer.voted_output(pair.training)
    print(f"  voted mission output MAE while faulty: "
          f"{sae(faulty_voted, pair.reference):.0f}  (pixel voter masks the fault)")

    # ------------------------------------------------------------------ #
    # 3. Autonomous recovery.
    # ------------------------------------------------------------------ #
    print("\nRunning the self-healing cycle (scrub -> classify -> imitate)...")
    report = healer.monitor_and_heal(stream_image=pair.training)
    print(f"  fault classified as : {report.fault_class.value}")
    print(f"  recovered           : {report.recovered}")
    for event in report.events:
        target = f" [array {event.array_index}]" if event.array_index is not None else ""
        detail = f" ({event.detail})" if event.detail else ""
        print(f"    - {event.step}{target}{detail}")
    if report.recovery_result is not None:
        recovery = report.recovery_result
        print(f"  imitation generations : {recovery.n_generations}")
        print(f"  final imitation MAE   : {recovery.best_fitness[2]:.0f} "
              "(0 would mean an exact behavioural copy of the master)")
    print(f"\nPer-array fitness after recovery: {healer.array_fitnesses()}")


if __name__ == "__main__":
    main()
