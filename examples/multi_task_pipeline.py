#!/usr/bin/env python3
"""Independent-cascaded mode: a multi-task image pipeline (paper §IV.A).

Besides the collaborative cascade, the architecture supports *independent
cascaded* operation: "different filters are also used in each stage, but in
this case, each one is in charge of a different task, such as noise
removal, followed by a smoothing filter, and then edge detection" — each
stage evolved against a different reference image (independent evolution
mode, §IV.B).

This example builds exactly that pipeline:

* stage 0 — impulse-noise removal (noisy image → clean reference);
* stage 1 — smoothing (clean image → Gaussian-smoothed reference);
* stage 2 — edge detection (smoothed image → Sobel reference);

then runs a corrupted frame through the whole chain and reports how close
the pipeline output is to the "ideal" chain of conventional filters.

Run with:  python examples/multi_task_pipeline.py
"""

from __future__ import annotations


from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig
from repro.array.genotype import Genotype
from repro.imaging.filters import gaussian_filter, median_filter, sobel_edges
from repro.imaging.images import make_test_image
from repro.imaging.metrics import mae
from repro.imaging.noise import add_salt_and_pepper

SEED = 31
SIZE = 48
GENERATIONS = 800


def main() -> None:
    clean = make_test_image(size=SIZE, seed=SEED, kind="composite")
    noisy = add_salt_and_pepper(clean, density=0.15, rng=SEED)
    smoothed_reference = gaussian_filter(clean, sigma=1.0)
    edge_reference = sobel_edges(smoothed_reference)

    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(strategy="independent", n_generations=GENERATIONS,
                        n_offspring=9, mutation_rate=4, seed=SEED),
    )
    platform = session.platform
    print("Evolving three independent stages (denoise, smooth, edge-detect)...")
    identity = Genotype.identity(platform.spec)
    result = session.evolve(
        (noisy, clean),  # default task; per-array tasks override below
        tasks={
            0: (noisy, clean),                      # denoise
            1: (clean, smoothed_reference),         # smooth
            2: (smoothed_reference, edge_reference) # detect edges
        },
        seed_genotypes={0: identity, 1: identity, 2: identity},
    ).raw
    for stage, task in enumerate(("denoise", "smooth", "edge detect")):
        print(f"  stage {stage} ({task:11s}): final training fitness "
              f"{result.best_fitness[stage]:.0f}")

    # ------------------------------------------------------------------ #
    # Mission time: run a fresh corrupted frame through the whole pipeline.
    # ------------------------------------------------------------------ #
    fresh_clean = make_test_image(size=SIZE, seed=SEED + 1, kind="composite")
    fresh_noisy = add_salt_and_pepper(fresh_clean, density=0.15, rng=SEED + 1)
    pipeline_output = platform.process_cascade(fresh_noisy)

    # The "ideal" conventional pipeline for comparison.
    ideal = sobel_edges(gaussian_filter(median_filter(fresh_noisy), sigma=1.0))
    ideal_from_clean = sobel_edges(gaussian_filter(fresh_clean, sigma=1.0))

    print("\nUnseen frame, per-pixel MAE of the edge map against the clean-image edge map:")
    print(f"  evolved pipeline                 : "
          f"{mae(pipeline_output, ideal_from_clean):6.2f}")
    print(f"  conventional median+gauss+sobel  : "
          f"{mae(ideal, ideal_from_clean):6.2f}")
    print(f"  doing nothing (edges of noisy)   : "
          f"{mae(sobel_edges(fresh_noisy), ideal_from_clean):6.2f}")
    print("\nEach stage was evolved against a different reference, so new system")
    print("functionality was obtained purely by changing the stored image pairs —")
    print("no redesign of the hardware (paper §III.A).")


if __name__ == "__main__":
    main()
