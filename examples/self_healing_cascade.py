#!/usr/bin/env python3
"""Self-healing cascade with lost reference images (paper §V.A, Figs. 7-8).

The cascaded self-healing strategy detects faults with a periodic
calibration image, distinguishes transients from permanent damage by
scrubbing, and recovers from permanent damage by bypassing the damaged
stage and re-evolving it.  The interesting case — the one evolution by
imitation exists for — is when the stored reference images are no longer
available ("training images are removed from memory to save resources, or
... a fault appears in the memories storing the images"), so the damaged
stage can only learn by imitating a healthy neighbour on the live stream.

This example walks through that scenario end to end, including an SEU that
is healed by scrubbing alone along the way.

Run with:  python examples/self_healing_cascade.py
"""

from __future__ import annotations

from repro.api import (
    EvolutionConfig,
    EvolutionSession,
    PlatformConfig,
    SelfHealingConfig,
    TaskSpec,
)
from repro.imaging.metrics import sae

SEED = 23


def print_report(title, report) -> None:
    print(f"\n--- {title} ---")
    print(f"  fault class : {report.fault_class.value}")
    print(f"  faulty array: {report.faulty_array}")
    print(f"  recovered   : {report.recovered}")
    for event in report.events:
        target = f" [array {event.array_index}]" if event.array_index is not None else ""
        detail = f" ({event.detail})" if event.detail else ""
        print(f"    - {event.step}{target}{detail}")


def main() -> None:
    task = TaskSpec(task="salt_pepper_denoise", image_side=48, seed=SEED, noise_level=0.2)
    pair = task.build()
    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(
            strategy="cascaded", n_generations=500, n_offspring=9,
            mutation_rate=3, seed=SEED,
            options={"fitness_mode": "separate", "schedule": "sequential",
                     "n_stages": 3},
        ),
    )
    platform = session.platform

    # ------------------------------------------------------------------ #
    # 1. Initial adaptation: evolve the collaborative cascade and store the
    #    training/reference images in the (simulated) flash memory.
    # ------------------------------------------------------------------ #
    print("Evolving the 3-stage collaborative cascade...")
    session.evolve(task)
    platform.store_image("training", pair.training)
    platform.store_image("reference", pair.reference)
    cascade_fitness = sae(platform.process_cascade(pair.training), pair.reference)
    print(f"  cascade output MAE: {cascade_fitness:.0f} "
          f"(noisy input: {sae(pair.training, pair.reference):.0f})")

    healer = session.heal(
        SelfHealingConfig(
            strategy="cascaded",
            imitation_generations=400,
            imitation_target_fitness=100.0,
            reference_image_key="reference",
            n_offspring=9,
            mutation_rate=3,
            seed=SEED + 1,
        ),
        calibration_image=pair.training,
        calibration_reference=pair.reference,
    )
    baseline = healer.initialize()
    print(f"  calibration baseline per array: "
          f"{ {k: round(v) for k, v in baseline.items()} }")

    # ------------------------------------------------------------------ #
    # 2. A transient fault (SEU): detected and healed by scrubbing alone.
    # ------------------------------------------------------------------ #
    position = platform.find_sensitive_position(1, pair.training)
    platform.inject_transient_fault(1, *position)
    print_report("Calibration cycle after an SEU in stage 1",
                 healer.check_and_heal(stream_image=pair.training))

    # ------------------------------------------------------------------ #
    # 3. The reference images are lost, then a permanent fault appears.
    #    Recovery must fall back to evolution by imitation.
    # ------------------------------------------------------------------ #
    print("\nErasing the stored training/reference images "
          "(simulating a memory fault / reclaimed storage)...")
    platform.erase_image("training")
    platform.erase_image("reference")

    position = platform.find_sensitive_position(1, pair.training)
    print(f"Injecting a permanent fault (LPD) in stage 1 at PE {position}...")
    platform.inject_permanent_fault(1, *position)
    report = healer.check_and_heal(stream_image=pair.training)
    print_report("Calibration cycle after the permanent fault", report)

    healed_fitness = sae(platform.process_cascade(pair.training), pair.reference)
    print("\nCascade output MAE:")
    print(f"  before any fault : {cascade_fitness:.0f}")
    print(f"  after recovery   : {healed_fitness:.0f}")
    print("The damaged stage was bypassed during recovery, so the stream never stopped;")
    print("its replacement behaviour was learned from the neighbouring stage by imitation,")
    print("without any stored reference image.")


if __name__ == "__main__":
    main()
