#!/usr/bin/env python3
"""Quickstart: evolve a salt-and-pepper denoiser on the multi-array platform.

This is the smallest end-to-end use of the library, written against the
unified Session API (``repro.api``):

1. describe the task declaratively (noisy image + clean reference);
2. describe the platform (three arrays) and the evolution strategy
   ("parallel": offspring distributed over the arrays, as in the paper's
   Fig. 5) as validated configs;
3. run ``session.evolve(task)`` and inspect the returned, serialisable
   :class:`~repro.api.artifact.RunArtifact`;
4. apply the evolved filter to a *fresh* noisy frame and compare it against
   the conventional 3x3 median filter baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig, TaskSpec
from repro.array.genotype import Genotype
from repro.imaging.filters import median_filter
from repro.imaging.images import make_training_pair
from repro.imaging.metrics import mae, sae


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The task, declaratively: 25% salt-and-pepper noise on a 64x64 image.
    # ------------------------------------------------------------------ #
    task = TaskSpec(task="salt_pepper_denoise", image_side=64, seed=7, noise_level=0.25)
    pair = task.build()
    print("Task: remove 25% salt-and-pepper noise from a 64x64 image")
    print(f"  aggregated MAE of the noisy input : {sae(pair.training, pair.reference):>10.0f}")

    # ------------------------------------------------------------------ #
    # 2. The session: a three-ACB platform plus a named evolution strategy.
    #    backend="numpy" selects the vectorised evaluation engine — it is
    #    bit-exact against the readable "reference" sweep (swap the name to
    #    check!), it just makes this script finish several times sooner.
    # ------------------------------------------------------------------ #
    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=7, backend="numpy"),
        EvolutionConfig(strategy="parallel", n_generations=1500,
                        n_offspring=9, mutation_rate=4, seed=7),
    )
    report = session.platform.resource_report()
    print(f"Platform: {session.platform.n_arrays} arrays "
          f"({session.platform.backend_name} evaluation backend), "
          f"{report.total_slices} slices, "
          f"{report.pe_reconfiguration_time_us:.2f} us per PE reconfiguration")

    # ------------------------------------------------------------------ #
    # 3. Evolve.  The artifact bundles results + timing + config provenance
    #    (artifact.to_json() / artifact.save(path) make it machine-readable).
    # ------------------------------------------------------------------ #
    artifact = session.evolve(
        task, seed_genotype=Genotype.identity(session.platform.spec)
    )
    results = artifact.results
    print("Evolution finished:")
    print(f"  generations            : {results['n_generations']}")
    print(f"  candidate evaluations  : {results['n_evaluations']}")
    print(f"  PE reconfigurations    : {results['n_reconfigurations']}")
    print(f"  platform time estimate : {artifact.timing['platform_time_s']:.2f} s "
          "(intrinsic-evolution time on the modelled FPGA, not Python time)")
    print(f"  best fitness           : {results['overall_best_fitness']:.0f}")

    # ------------------------------------------------------------------ #
    # 4. Mission time: filter a fresh frame and compare with the median filter.
    # ------------------------------------------------------------------ #
    fresh = make_training_pair("salt_pepper_denoise", size=64, seed=8, noise_level=0.25)
    evolved_output = session.platform.acb(0).shadow_process(fresh.training)
    median_output = median_filter(fresh.training)
    print("Generalisation to an unseen frame (per-pixel MAE):")
    print(f"  unfiltered     : {mae(fresh.training, fresh.reference):6.2f}")
    print(f"  evolved filter : {mae(evolved_output, fresh.reference):6.2f}")
    print(f"  median filter  : {mae(median_output, fresh.reference):6.2f}")


if __name__ == "__main__":
    main()
