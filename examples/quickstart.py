#!/usr/bin/env python3
"""Quickstart: evolve a salt-and-pepper denoiser on the multi-array platform.

This is the smallest end-to-end use of the library:

1. build a synthetic training pair (noisy image + clean reference);
2. instantiate a three-array evolvable hardware platform;
3. run parallel evolution (offspring distributed over the arrays, as in the
   paper's Fig. 5) for a few hundred generations;
4. apply the evolved filter to a *fresh* noisy frame and compare it against
   the conventional 3x3 median filter baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EvolvableHardwarePlatform, ParallelEvolution
from repro.array.genotype import Genotype
from repro.imaging.filters import median_filter
from repro.imaging.images import make_training_pair
from repro.imaging.metrics import mae, sae


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Training data: a noisy image and the clean reference.
    # ------------------------------------------------------------------ #
    pair = make_training_pair(
        "salt_pepper_denoise", size=64, seed=7, noise_level=0.25
    )
    print("Task: remove 25% salt-and-pepper noise from a 64x64 image")
    print(f"  aggregated MAE of the noisy input : {sae(pair.training, pair.reference):>10.0f}")

    # ------------------------------------------------------------------ #
    # 2. The platform: three Array Control Blocks on a simulated fabric.
    # ------------------------------------------------------------------ #
    platform = EvolvableHardwarePlatform(n_arrays=3, seed=7)
    report = platform.resource_report()
    print(f"Platform: {platform.n_arrays} arrays, "
          f"{report.total_slices} slices, "
          f"{report.pe_reconfiguration_time_us:.2f} us per PE reconfiguration")

    # ------------------------------------------------------------------ #
    # 3. Parallel evolution: 9 offspring per generation spread over 3 arrays.
    # ------------------------------------------------------------------ #
    driver = ParallelEvolution(platform, n_offspring=9, mutation_rate=4, rng=7)
    result = driver.run(
        pair.training,
        pair.reference,
        n_generations=1500,
        seed_genotype=Genotype.identity(platform.spec),
    )
    print("Evolution finished:")
    print(f"  generations            : {result.n_generations}")
    print(f"  candidate evaluations  : {result.n_evaluations}")
    print(f"  PE reconfigurations    : {result.n_reconfigurations}")
    print(f"  platform time estimate : {result.platform_time_s:.2f} s "
          "(intrinsic-evolution time on the modelled FPGA, not Python time)")
    print(f"  best fitness           : {result.overall_best_fitness():.0f}")

    # ------------------------------------------------------------------ #
    # 4. Mission time: filter a fresh frame and compare with the median filter.
    # ------------------------------------------------------------------ #
    fresh = make_training_pair("salt_pepper_denoise", size=64, seed=8, noise_level=0.25)
    evolved_output = platform.acb(0).shadow_process(fresh.training)
    median_output = median_filter(fresh.training)
    print("Generalisation to an unseen frame (per-pixel MAE):")
    print(f"  unfiltered     : {mae(fresh.training, fresh.reference):6.2f}")
    print(f"  evolved filter : {mae(evolved_output, fresh.reference):6.2f}")
    print(f"  median filter  : {mae(median_output, fresh.reference):6.2f}")


if __name__ == "__main__":
    main()
