#!/usr/bin/env python3
"""Campaign sweep: evolve denoisers over a mutation-rate x noise grid in parallel.

This example shows the `repro.runtime` campaign engine end to end:

1. describe a whole family of runs declaratively (a 3x3 grid over the
   EA's mutation rate and the task's noise density, with per-run seeds
   derived deterministically from one campaign seed);
2. execute it on the multiprocessing executor, with results persisted
   into a resumable on-disk store;
3. aggregate the per-run artifacts into one summary table — and re-run
   the script to see every run resume from the store instead of
   recomputing.

Run with:  python examples/campaign_sweep.py
"""

from __future__ import annotations

from repro.api import (
    CampaignSpec,
    EvolutionConfig,
    PlatformConfig,
    TaskSpec,
    run_campaign,
)

STORE = "campaign-store"


def main() -> None:
    spec = CampaignSpec(
        name="denoise-grid",
        platform=PlatformConfig(n_arrays=3, seed=7),
        evolution=EvolutionConfig(strategy="parallel", n_generations=120, seed=None),
        task=TaskSpec(task="salt_pepper_denoise", image_side=32, seed=7),
        grid={
            "evolution.mutation_rate": [1, 3, 5],
            "task.noise_level": [0.05, 0.15, 0.3],
        },
        seed=2013,
    )
    print(f"Campaign {spec.name!r}: {spec.n_runs()} runs, store in {STORE}/")

    result = run_campaign(
        spec,
        executor="process",
        store=STORE,
        progress=lambda run, status: print(f"  {run.run_id} {dict(run.overrides)}: {status}"),
    )

    print(
        f"\nCompleted {result.n_completed}/{len(result.runs)} runs "
        f"({len(result.resumed_run_ids)} resumed from the store) "
        f"in {result.wall_time_s:.1f}s on the {result.executor} executor"
    )
    print(f"{'k':>3}  {'noise':>6}  {'best fitness':>12}")
    for run in result.runs:
        artifact = result.artifact_for(run)
        print(
            f"{run.evolution.mutation_rate:>3}  "
            f"{run.task.noise_level:>6.2f}  "
            f"{artifact.results['overall_best_fitness']:>12.0f}"
        )
    print(f"\nPer-run artifacts and the JSONL index live in {STORE}/")


if __name__ == "__main__":
    main()
