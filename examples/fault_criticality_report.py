#!/usr/bin/env python3
"""Fault-criticality assessment of an evolved platform (paper §VII future work).

The paper's conclusions list "analyzing the criticality of all elements in
the system [for] an overall fault resistance assessment" as future work.
This example performs that assessment on the reproduced platform:

1. evolve a denoising circuit and deploy it on all three arrays;
2. print a human-readable description of the evolved circuit, including
   which PEs are actually on the path to the output;
3. sweep a PE-level fault over every position of array 0 and print the
   per-position fitness degradation (the systematic fault analysis of §V /
   §VI.D, generalised);
4. summarise the criticality of the whole platform.

Run with:  python examples/fault_criticality_report.py
"""

from __future__ import annotations

from repro.analysis import describe_genotype, fault_sweep, platform_fault_sweep
from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig, TaskSpec
from repro.array.genotype import Genotype
from repro.experiments.fault_sweep import summarise

SEED = 17


def main() -> None:
    task = TaskSpec(task="salt_pepper_denoise", image_side=48, seed=SEED, noise_level=0.2)
    pair = task.build()
    session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(strategy="parallel", n_generations=600,
                        n_offspring=9, mutation_rate=4, seed=SEED),
    )
    platform = session.platform

    print("Evolving the working circuit...")
    result = session.evolve(
        task, seed_genotype=Genotype.identity(platform.spec)
    ).raw
    working = result.best_genotypes[0]
    print(f"  best fitness: {result.overall_best_fitness():.0f}\n")

    print("Evolved circuit:")
    print(describe_genotype(working))

    print("\nSystematic PE-level fault sweep of array 0 "
          "(mean over 3 random fault instances per position):")
    report = fault_sweep(working, pair.training, pair.reference, n_repeats=3, seed=SEED)
    print(f"  fault-free fitness: {report.baseline_fitness:.0f}")
    print("  position  active  degradation")
    for entry in report.positions:
        print(f"  {str(entry.position):>8s}  {str(entry.structurally_active):>6s}  "
              f"{entry.degradation:12.0f}")
    print(f"  benign positions  : {report.n_benign}/16")
    print(f"  critical positions: {report.n_critical}/16")
    worst = report.most_critical(1)[0]
    print(f"  most critical PE  : {worst.position} "
          f"(+{worst.degradation:.0f} aggregated MAE)")

    print("\nPlatform-wide summary (every array):")
    for summary in map(summarise, platform_fault_sweep(
            platform, pair.training, pair.reference, n_repeats=2, seed=SEED)):
        print(f"  array {summary.array_index}: {summary.n_critical}/16 critical positions, "
              f"worst degradation {summary.max_degradation:.0f}, "
              f"inactive-but-critical {summary.structurally_inactive_but_critical}")
    print("\nFaults in inactive PEs are functionally benign — the self-healing strategy")
    print("only needs to react when a critical position is hit, and relocation /")
    print("re-evolution can deliberately steer circuits away from damaged regions.")


if __name__ == "__main__":
    main()
