#!/usr/bin/env python3
"""Collaborative cascaded filtering of heavily corrupted images (paper §IV.A, Fig. 18).

The paper's flagship quality result is a three-stage *adapted* cascade: each
stage is evolved on the output of the previous one, so every stage
specialises on the residual noise left by its predecessor.  This example:

1. corrupts a test image with 40 % salt-and-pepper noise;
2. evolves a three-stage collaborative cascade with sequential cascaded
   evolution (separate fitness units, same reference);
3. prints the aggregated MAE after each stage, the comparison against the
   conventional median filter, and the comparison against a "same filter in
   every stage" cascade (the iterative approach of Figs. 16-17).

Run with:  python examples/cascaded_denoising.py
"""

from __future__ import annotations

from repro import CascadedEvolution, EvolvableHardwarePlatform, ParallelEvolution
from repro.core.modes import CascadeFitnessMode, CascadeSchedule
from repro.imaging.filters import median_filter
from repro.imaging.images import make_training_pair
from repro.imaging.metrics import sae

GENERATIONS_PER_STAGE = 1200
NOISE_DENSITY = 0.40
IMAGE_SIDE = 64
SEED = 42


def main() -> None:
    pair = make_training_pair(
        "salt_pepper_denoise", size=IMAGE_SIDE, seed=SEED, noise_level=NOISE_DENSITY
    )
    noisy_fitness = sae(pair.training, pair.reference)
    print(f"Input: {IMAGE_SIDE}x{IMAGE_SIDE} image, {NOISE_DENSITY:.0%} salt-and-pepper noise")
    print(f"  aggregated MAE of the noisy input: {noisy_fitness:.0f}\n")

    # --- base (stage-1) filter: shared by both cascade arrangements ------ #
    print(f"Evolving the base stage-1 filter ({GENERATIONS_PER_STAGE} generations)...")
    same_platform = EvolvableHardwarePlatform(n_arrays=3, seed=SEED)
    single = ParallelEvolution(same_platform, n_offspring=9, mutation_rate=4, rng=SEED)
    single_result = single.run(pair.training, pair.reference,
                               n_generations=GENERATIONS_PER_STAGE)
    base_filter = single_result.best_genotypes[0]

    # --- same filter in every stage (the iterative approach) ------------- #
    for stage in range(3):
        same_platform.configure_array(stage, base_filter)
    same_outputs = same_platform.cascade_stage_outputs(pair.training)
    print("Same filter configured in every stage, aggregated MAE after each stage:")
    for stage, output in enumerate(same_outputs, start=1):
        print(f"  stage {stage}: {sae(output, pair.reference):10.0f}")

    # --- adapted cascade (collaborative cascaded evolution) -------------- #
    platform = EvolvableHardwarePlatform(n_arrays=3, seed=SEED)
    cascade = CascadedEvolution(
        platform,
        n_offspring=9,
        mutation_rate=4,
        rng=SEED,
        fitness_mode=CascadeFitnessMode.SEPARATE,
        schedule=CascadeSchedule.SEQUENTIAL,
    )
    print(f"Adapting stages 2 and 3 on top of the base filter "
          f"({GENERATIONS_PER_STAGE} generations per stage)...")
    cascade.run(pair.training, pair.reference,
                n_generations=GENERATIONS_PER_STAGE, n_stages=3,
                seed_genotypes=[base_filter])

    print("Adapted cascade, aggregated MAE after each stage:")
    outputs = platform.cascade_stage_outputs(pair.training)
    for stage, output in enumerate(outputs, start=1):
        print(f"  stage {stage}: {sae(output, pair.reference):10.0f}")
    adapted_final = sae(outputs[-1], pair.reference)

    # --- conventional baseline ------------------------------------------- #
    median_fitness = sae(median_filter(pair.training), pair.reference)
    print("\nSummary (lower is better):")
    print(f"  noisy input                      : {noisy_fitness:10.0f}")
    print(f"  3x3 median filter (single pass)  : {median_fitness:10.0f}")
    print(f"  same-filter cascade (3 stages)   : {sae(same_outputs[-1], pair.reference):10.0f}")
    print(f"  adapted cascade (3 stages)       : {adapted_final:10.0f}")
    print("\nNote: the paper evolves each stage for 100,000 generations and reports")
    print("the adapted cascade clearly beating the median filter; the gap closes")
    print("monotonically with the generation budget (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
