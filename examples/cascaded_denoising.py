#!/usr/bin/env python3
"""Collaborative cascaded filtering of heavily corrupted images (paper §IV.A, Fig. 18).

The paper's flagship quality result is a three-stage *adapted* cascade: each
stage is evolved on the output of the previous one, so every stage
specialises on the residual noise left by its predecessor.  This example:

1. corrupts a test image with 40 % salt-and-pepper noise;
2. evolves a three-stage collaborative cascade with sequential cascaded
   evolution (separate fitness units, same reference);
3. prints the aggregated MAE after each stage, the comparison against the
   conventional median filter, and the comparison against a "same filter in
   every stage" cascade (the iterative approach of Figs. 16-17).

Run with:  python examples/cascaded_denoising.py
"""

from __future__ import annotations

from repro.api import EvolutionConfig, EvolutionSession, PlatformConfig, TaskSpec
from repro.imaging.filters import median_filter
from repro.imaging.metrics import sae

GENERATIONS_PER_STAGE = 1200
NOISE_DENSITY = 0.40
IMAGE_SIDE = 64
SEED = 42


def main() -> None:
    task = TaskSpec(task="salt_pepper_denoise", image_side=IMAGE_SIDE,
                    seed=SEED, noise_level=NOISE_DENSITY)
    pair = task.build()
    noisy_fitness = sae(pair.training, pair.reference)
    print(f"Input: {IMAGE_SIDE}x{IMAGE_SIDE} image, {NOISE_DENSITY:.0%} salt-and-pepper noise")
    print(f"  aggregated MAE of the noisy input: {noisy_fitness:.0f}\n")

    # --- base (stage-1) filter: shared by both cascade arrangements ------ #
    print(f"Evolving the base stage-1 filter ({GENERATIONS_PER_STAGE} generations)...")
    base_session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(strategy="parallel", n_generations=GENERATIONS_PER_STAGE,
                        n_offspring=9, mutation_rate=4, seed=SEED),
    )
    base_filter = base_session.evolve(pair).raw.best_genotypes[0]

    # --- same filter in every stage (the iterative approach) ------------- #
    same_platform = base_session.platform
    for stage in range(3):
        same_platform.configure_array(stage, base_filter)
    same_outputs = same_platform.cascade_stage_outputs(pair.training)
    print("Same filter configured in every stage, aggregated MAE after each stage:")
    for stage, output in enumerate(same_outputs, start=1):
        print(f"  stage {stage}: {sae(output, pair.reference):10.0f}")

    # --- adapted cascade (collaborative cascaded evolution) -------------- #
    cascade_session = EvolutionSession(
        PlatformConfig(n_arrays=3, seed=SEED),
        EvolutionConfig(
            strategy="cascaded",
            n_generations=GENERATIONS_PER_STAGE,
            n_offspring=9,
            mutation_rate=4,
            seed=SEED,
            options={"fitness_mode": "separate", "schedule": "sequential",
                     "n_stages": 3},
        ),
    )
    print(f"Adapting stages 2 and 3 on top of the base filter "
          f"({GENERATIONS_PER_STAGE} generations per stage)...")
    cascade_session.evolve(pair, seed_genotypes=[base_filter])

    print("Adapted cascade, aggregated MAE after each stage:")
    outputs = cascade_session.platform.cascade_stage_outputs(pair.training)
    for stage, output in enumerate(outputs, start=1):
        print(f"  stage {stage}: {sae(output, pair.reference):10.0f}")
    adapted_final = sae(outputs[-1], pair.reference)

    # --- conventional baseline ------------------------------------------- #
    median_fitness = sae(median_filter(pair.training), pair.reference)
    print("\nSummary (lower is better):")
    print(f"  noisy input                      : {noisy_fitness:10.0f}")
    print(f"  3x3 median filter (single pass)  : {median_fitness:10.0f}")
    print(f"  same-filter cascade (3 stages)   : {sae(same_outputs[-1], pair.reference):10.0f}")
    print(f"  adapted cascade (3 stages)       : {adapted_final:10.0f}")
    print("\nNote: the paper evolves each stage for 100,000 generations and reports")
    print("the adapted cascade clearly beating the median filter; the gap closes")
    print("monotonically with the generation budget (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
