"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so legacy tooling (and offline `pip install -e . --no-use-pep517`
in environments without the `wheel` package) can still do an editable
install; `pip install -e .` uses pyproject.toml directly.
"""

from setuptools import setup

setup()
